#!/usr/bin/env bash
# CLI error-path coverage: every misuse of the snapshot protocol must exit
# with its documented code (docs/CLI.md, "Exit codes") and a one-line
# diagnostic on stderr — never a crash, never a zero exit, never silence.
#
#   1 io   2 usage   3 corrupt-input   4 incompatible
#   5 worker-failure   6 partial-result
#
# Usage: cli_errors_test.sh /path/to/silkmoth_cli
set -euo pipefail

CLI="${1:?usage: cli_errors_test.sh /path/to/silkmoth_cli}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fail() { echo "FAIL: $*" >&2; exit 1; }

# expect_error NAME CODE PATTERN -- ARGS...: the CLI must exit with exactly
# CODE and print a diagnostic matching PATTERN on stderr.
expect_error() {
  local name="$1" code="$2" pattern="$3"
  shift 4  # name, code, pattern, "--"
  local rc=0
  "$CLI" "$@" > "$TMP/out.log" 2> "$TMP/err.log" || rc=$?
  [ "$rc" -eq "$code" ] || fail "$name: expected exit $code, got $rc"
  grep -q "$pattern" "$TMP/err.log" \
    || fail "$name: stderr missing '$pattern': $(cat "$TMP/err.log")"
  echo "ok: $name (exit $rc)"
}

"$CLI" generate schema 20 "$TMP/corpus.txt" > /dev/null
"$CLI" build --data "$TMP/corpus.txt" --out "$TMP/corpus.snap" --shards 2 \
  > /dev/null
"$CLI" shard-run --snapshot "$TMP/corpus.snap" --shard 0 \
  --out "$TMP/r0.txt" > /dev/null

expect_error "unknown subcommand" 2 "unknown subcommand: frobnicate" -- \
  frobnicate --data "$TMP/corpus.txt"
expect_error "build without --out" 2 "build needs --data and --out" -- \
  build --data "$TMP/corpus.txt"
expect_error "shard-run without snapshot" 2 "shard-run needs --snapshot" -- \
  shard-run --shard 0 --out "$TMP/r.txt"
expect_error "shard-run missing snapshot file" 1 "cannot open" -- \
  shard-run --snapshot "$TMP/nonexistent.snap" --shard 0 --out "$TMP/r.txt"
expect_error "shard-run shard out of range" 2 "out of range" -- \
  shard-run --snapshot "$TMP/corpus.snap" --shard 7 --out "$TMP/r.txt"
expect_error "shard-run negative shard" 2 "shard-run needs --shard" -- \
  shard-run --snapshot "$TMP/corpus.snap" --shard -3 --out "$TMP/r.txt"
expect_error "shard-run non-numeric shard" 2 "invalid --shard value: tow" -- \
  shard-run --snapshot "$TMP/corpus.snap" --shard tow --out "$TMP/r.txt"
expect_error "shard-run phi mismatch" 4 "rebuild the snapshot" -- \
  shard-run --snapshot "$TMP/corpus.snap" --shard 0 --out "$TMP/r.txt" \
  --phi eds --alpha 0.6
expect_error "merge with zero inputs" 2 \
  "merge needs at least one shard result file" -- merge
expect_error "merge missing file" 1 "cannot open" -- \
  merge "$TMP/nonexistent-result.txt"
expect_error "merge incomplete shard cover" 4 "missing result for shard" -- \
  merge "$TMP/r0.txt"
expect_error "merge duplicate shard" 4 "duplicate result for shard" -- \
  merge "$TMP/r0.txt" "$TMP/r0.txt"
expect_error "merge non-result file" 3 "not a silkmoth shard result" -- \
  merge "$TMP/corpus.txt"
expect_error "shard-run on text file" 3 "bad magic" -- \
  shard-run --snapshot "$TMP/corpus.txt" --shard 0 --out "$TMP/r.txt"
expect_error "stray positional argument" 2 \
  "unexpected argument: extra.txt" -- \
  discover --data "$TMP/corpus.txt" extra.txt
expect_error "discover missing data file" 1 "cannot read" -- \
  discover --data "$TMP/nonexistent.txt"
expect_error "run without --data" 2 "run needs --data" -- run --shards 2
expect_error "run negative retries" 2 "must be non-negative" -- \
  run --data "$TMP/corpus.txt" --retries -1
expect_error "run malformed inject plan" 2 "invalid --inject value" -- \
  run --data "$TMP/corpus.txt" --inject frobnicate

# Shards run under different query options must not merge: the combined
# stream would match no single-process run.
"$CLI" shard-run --snapshot "$TMP/corpus.snap" --shard 1 \
  --out "$TMP/r1_other_delta.txt" --delta 0.9 > /dev/null
expect_error "merge options mismatch" 4 "disagree on query options" -- \
  merge "$TMP/r0.txt" "$TMP/r1_other_delta.txt"

# A truncated result file must be caught by the reader's self-checks, not
# merged silently: drop the trailing pair lines of a valid result.
head -n 6 "$TMP/r0.txt" > "$TMP/r0_truncated.txt"
expect_error "merge truncated result" 3 "" -- merge "$TMP/r0_truncated.txt"

# --- degraded partial merge -------------------------------------------------
# With --allow-partial the same incomplete cover merges, stamps its
# coverage ahead of the pairs, and exits kPartialResult — distinguishable
# from both success and failure.
rc=0
"$CLI" merge "$TMP/r0.txt" --allow-partial > "$TMP/partial.log" 2>&1 || rc=$?
[ "$rc" -eq 6 ] || fail "merge --allow-partial: expected exit 6, got $rc"
grep -q "# partial coverage: 1 of 2 shards" "$TMP/partial.log" \
  || fail "merge --allow-partial: missing coverage stamp"
grep -q "# covered shards: 0" "$TMP/partial.log" \
  || fail "merge --allow-partial: missing covered-shards line"
grep -q "# missing shards: 1" "$TMP/partial.log" \
  || fail "merge --allow-partial: missing missing-shards line"
echo "ok: merge --allow-partial stamps coverage (exit 6)"

# --- query mode -------------------------------------------------------------

expect_error "query without snapshot" 2 \
  "query needs --snapshot and --input" -- query --input "$TMP/corpus.txt"
expect_error "query without input" 2 "query needs --snapshot and --input" -- \
  query --snapshot "$TMP/corpus.snap"
expect_error "query missing input file" 1 "cannot read" -- \
  query --snapshot "$TMP/corpus.snap" --input "$TMP/nonexistent.txt"
expect_error "query missing snapshot file" 1 "cannot open" -- \
  query --snapshot "$TMP/nonexistent.snap" --input "$TMP/corpus.txt"
expect_error "query phi mismatch" 4 "rebuild the snapshot" -- \
  query --snapshot "$TMP/corpus.snap" --input "$TMP/corpus.txt" \
  --phi eds --alpha 0.6
expect_error "shard-run missing query file" 1 "cannot read" -- \
  shard-run --snapshot "$TMP/corpus.snap" --shard 0 --out "$TMP/r.txt" \
  --query "$TMP/nonexistent.txt"

# Reference payloads are fingerprinted: shards run against different query
# files — or a query shard against a self-join shard — must not merge.
head -n 3 "$TMP/corpus.txt" > "$TMP/queries_a.txt"
head -n 5 "$TMP/corpus.txt" > "$TMP/queries_b.txt"
"$CLI" shard-run --snapshot "$TMP/corpus.snap" --shard 0 \
  --query "$TMP/queries_a.txt" --out "$TMP/qa0.txt" > /dev/null
"$CLI" shard-run --snapshot "$TMP/corpus.snap" --shard 1 \
  --query "$TMP/queries_b.txt" --out "$TMP/qb1.txt" > /dev/null
"$CLI" shard-run --snapshot "$TMP/corpus.snap" --shard 1 \
  --out "$TMP/rself1.txt" > /dev/null
expect_error "merge mixed query payloads" 4 "different query payloads" -- \
  merge "$TMP/qa0.txt" "$TMP/qb1.txt"
expect_error "merge query with self-join" 4 \
  "a query run against a self-join run" -- \
  merge "$TMP/qa0.txt" "$TMP/rself1.txt"

# --- serve / serve-client ---------------------------------------------------

expect_error "serve without snapshot" 2 "serve needs --snapshot" -- \
  serve --listen "$TMP/x.sock"
expect_error "serve without transport" 2 \
  "exactly one of --listen SOCK or" -- serve --snapshot "$TMP/corpus.snap"
expect_error "serve with both transports" 2 \
  "exactly one of --listen SOCK or" -- \
  serve --snapshot "$TMP/corpus.snap" --listen "$TMP/x.sock" --stdio
expect_error "serve zero queue" 2 "must be positive" -- \
  serve --snapshot "$TMP/corpus.snap" --stdio --max-queue 0
expect_error "serve negative deadline" 2 "non-negative" -- \
  serve --snapshot "$TMP/corpus.snap" --stdio --request-deadline -1
expect_error "serve missing snapshot file" 1 "cannot open" -- \
  serve --snapshot "$TMP/nonexistent.snap" --stdio
expect_error "serve on text file" 3 "bad magic" -- \
  serve --snapshot "$TMP/corpus.txt" --stdio
expect_error "serve-client without connect" 2 \
  "serve-client needs --connect" -- serve-client --ping
expect_error "serve-client without action" 2 "exactly one of --ping" -- \
  serve-client --connect "$TMP/x.sock"
expect_error "serve-client conflicting actions" 2 "exactly one of --ping" -- \
  serve-client --connect "$TMP/x.sock" --ping --shutdown
expect_error "serve-client no daemon" 1 "cannot connect" -- \
  serve-client --connect "$TMP/no-daemon.sock" --ping

# --- ingest / compact / delta files -----------------------------------------

expect_error "ingest without delta-out" 2 \
  "ingest needs --snapshot, --input, and --delta-out" -- \
  ingest --snapshot "$TMP/corpus.snap" --input "$TMP/corpus.txt"
expect_error "ingest missing snapshot file" 1 "cannot open" -- \
  ingest --snapshot "$TMP/nonexistent.snap" --input "$TMP/corpus.txt" \
  --delta-out "$TMP/d.txt"
expect_error "ingest missing batch file" 1 "cannot read" -- \
  ingest --snapshot "$TMP/corpus.snap" --input "$TMP/no-batch.txt" \
  --delta-out "$TMP/d.txt"
expect_error "compact without out" 2 "compact needs --snapshot and --out" -- \
  compact --snapshot "$TMP/corpus.snap"
expect_error "compact zero shards" 2 "shards must be" -- \
  compact --snapshot "$TMP/corpus.snap" --out "$TMP/c.snap" --shards 0
expect_error "compact missing delta file" 1 "cannot read" -- \
  compact --snapshot "$TMP/corpus.snap" --out "$TMP/c.snap" \
  --delta-file "$TMP/no-delta.txt"
expect_error "discover snapshot with shards override" 2 \
  "partition from the snapshot" -- \
  discover --snapshot "$TMP/corpus.snap" --shards 2
expect_error "query missing delta file" 1 "cannot read" -- \
  query --snapshot "$TMP/corpus.snap" --input "$TMP/corpus.txt" \
  --delta-file "$TMP/no-delta.txt"

# --- EPIPE: a closed stdout is an I/O failure, not a crash ------------------
# SIGPIPE is ignored process-wide, so writing discovery output into a pipe
# whose reader quit surfaces as a diagnosed kIo exit — never a silent
# signal death. head -c closes the pipe after 64 bytes; the discover output
# is far larger, so a flush must hit EPIPE.
"$CLI" generate columns 300 "$TMP/big.txt" > /dev/null
rc=0
"$CLI" discover --data "$TMP/big.txt" --metric containment --delta 0.05 \
  --alpha 0.0 2> "$TMP/epipe.err" | head -c 64 > /dev/null || rc=$?
[ "$rc" -eq 1 ] || fail "EPIPE: expected exit 1 (io), got $rc"
grep -q "stdout write failed" "$TMP/epipe.err" \
  || fail "EPIPE: missing diagnostic: $(cat "$TMP/epipe.err")"
echo "ok: EPIPE on stdout exits 1 with a diagnostic (exit $rc)"

echo "PASS: CLI error paths"
