// Executable documentation: the paper's running example (Table 2, Figure 2,
// Examples 2 and 6-9) traced through every pipeline stage with the exact
// intermediate values the paper reports. If this test fails, the repository
// no longer implements the paper.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "filter/check_filter.h"
#include "filter/nn_filter.h"
#include "matching/verifier.h"
#include "paper_example.h"
#include "sig/scheme.h"

namespace silkmoth {
namespace {

using test::MakePaperExample;
using test::T;

TEST(PaperWalkthrough, FullPipeline) {
  auto ex = MakePaperExample();

  // --- Stage 0: tokens and the inverted index (Figure 2, left). ---
  InvertedIndex index;
  index.Build(ex.data);
  const size_t costs[] = {9, 8, 7, 6, 6, 6, 5, 3, 3, 1, 1, 1};
  for (int t = 1; t <= 12; ++t) {
    ASSERT_EQ(index.ListSize(T(t)), costs[t - 1]) << "t" << t;
  }

  // --- Stage 1: signature generation (Examples 6/7). ---
  // δ = 0.7, |R| = 3, θ = 2.1; greedy weighted signature is
  // K_R = {{t8}, {t9,t10}, {t11,t12}} with bound sum 2.0 < θ.
  Options opt;
  opt.metric = Relatedness::kContainment;
  opt.phi = SimilarityKind::kJaccard;
  opt.delta = 0.7;
  SchemeParams params;
  params.scheme = SignatureSchemeKind::kWeighted;
  params.phi = opt.phi;
  params.theta = 2.1;
  const Signature sig = WeightedSignature(ex.ref, index, params);
  ASSERT_TRUE(sig.valid);
  ASSERT_EQ(sig.FlatTokens(),
            (std::vector<TokenId>{T(8), T(9), T(10), T(11), T(12)}));
  ASSERT_NEAR(sig.miss_bound_sum, 2.0, 1e-12);

  // --- Stage 2: candidate selection (Example 3 / Figure 2 right). ---
  // The signature tokens touch S2, S3, S4; S1 is never considered.
  CheckFilterStats cstats;
  auto candidates = SelectAndCheckCandidates(ex.ref, sig, ex.data, index,
                                             opt, /*apply_check=*/false,
                                             &cstats);
  ASSERT_EQ(cstats.initial_candidates, 3u);

  // --- Stage 3: check filter (Example 8). ---
  // Jac(r1, s21) = 0.6 < 0.8 and Jac(r2, s23) = 0.25 < 0.6 are all of S2's
  // matches -> S2 pruned. S3 and S4 have strong matches and survive.
  candidates = SelectAndCheckCandidates(ex.ref, sig, ex.data, index, opt,
                                        /*apply_check=*/true);
  ASSERT_EQ(candidates.size(), 2u);
  ASSERT_EQ(candidates[0].set_id, 2u);  // S3
  ASSERT_EQ(candidates[1].set_id, 3u);  // S4

  // --- Stage 4: nearest-neighbor filter (Example 9). ---
  // For S3: est = 5/6 (exact NN of r1, reused) + 0.6 + 0.6 ≈ 2.03 < 2.1.
  // S3 is pruned; S4's estimate stays above θ and survives.
  auto refined = NnFilterCandidates(ex.ref, sig, std::move(candidates),
                                    ex.data, index, opt);
  ASSERT_EQ(refined.size(), 1u);
  ASSERT_EQ(refined[0].set_id, 3u);  // S4

  // NN values the paper quotes: NN(r1, S3) = 5/6, NN(r2, S3) = 0.125.
  EXPECT_NEAR(NnSearch(ex.ref.elements[0], 2, ex.data, index, opt),
              5.0 / 6.0, 1e-12);
  EXPECT_NEAR(NnSearch(ex.ref.elements[1], 2, ex.data, index, opt), 0.125,
              1e-12);

  // --- Stage 5: verification (Example 2). ---
  // |R ∩̃ S4| = 0.8 + 1 + 3/7 ≈ 2.229 >= θ; containment ≈ 0.743 >= 0.7.
  MaxMatchingVerifier verifier(GetSimilarity(opt.phi), 0.0, true);
  const double m = verifier.Score(ex.ref, ex.data.sets[3]);
  EXPECT_NEAR(m, 2.2285714, 1e-6);
  EXPECT_NEAR(m / 3.0, 0.743, 0.001);

  // --- End to end: the engine returns exactly S4. ---
  SilkMoth engine(&ex.data, opt);
  auto result = engine.Search(ex.ref);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0].set_id, 3u);
}

TEST(PaperWalkthrough, Example13DichotomyPipeline) {
  // α = δ = 0.7: the dichotomy signature is {t11, t12}; only S3 (which
  // contains t11/t12 in s32) is even considered, and verification rejects
  // it — the whole search does a single maximum matching.
  auto ex = MakePaperExample();
  Options opt;
  opt.metric = Relatedness::kContainment;
  opt.phi = SimilarityKind::kJaccard;
  opt.delta = 0.7;
  opt.alpha = 0.7;
  opt.scheme = SignatureSchemeKind::kDichotomy;
  SilkMoth engine(&ex.data, opt);
  SearchStats stats;
  auto result = engine.Search(ex.ref, &stats);
  EXPECT_EQ(stats.initial_candidates, 1u);  // Only S3 shares t11/t12.
  // Under φ_0.7 the alignment scores for S4 fall below θ as well; nothing
  // is related, matching the brute-force oracle.
  EXPECT_TRUE(result.empty());
}

}  // namespace
}  // namespace silkmoth
