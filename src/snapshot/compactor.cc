#include "snapshot/compactor.h"

namespace silkmoth {

std::string CompactSnapshot(const Snapshot& base, const DeltaShard& delta,
                            const std::string& out_path,
                            const CompactOptions& options,
                            CompactResult* result) {
  if (options.num_shards == 0) return "compact: num_shards must be >= 1";
  if (delta.base_sets() != base.data.sets.size()) {
    return "compact: delta was built over a different base (" +
           std::to_string(delta.base_sets()) + " base sets vs " +
           std::to_string(base.data.sets.size()) + " in the snapshot)";
  }
  // The merged corpus is a view copy: set records alias the base's mapped
  // regions and the delta's arena, both of which the caller keeps alive
  // across this call. BuildSnapshot re-runs the canonical partition and
  // index construction over it, so the next generation is indistinguishable
  // from a from-scratch build of the same sets.
  Snapshot next = BuildSnapshot(delta.combined(), base.tokenizer, base.q,
                                options.num_shards, options.num_threads);
  next.generation = base.generation + 1;

  const std::string err =
      options.split ? SaveSnapshotSplit(next, out_path, "compact-write")
                    : SaveSnapshot(next, out_path, "compact-write");
  if (!err.empty()) return err;

  if (result != nullptr) {
    result->generation = next.generation;
    result->total_sets = next.data.sets.size();
    result->delta_sets = delta.delta_sets();
    result->num_shards = options.num_shards;
  }
  return "";
}

}  // namespace silkmoth
