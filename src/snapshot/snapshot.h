#ifndef SILKMOTH_SNAPSHOT_SNAPSHOT_H_
#define SILKMOTH_SNAPSHOT_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "index/inverted_index.h"
#include "text/dataset.h"
#include "text/tokenizer.h"

namespace silkmoth {

/// Binary snapshot of a fully prepared corpus: everything an out-of-process
/// shard worker needs to run one shard's discovery with zero re-tokenization.
///
/// A snapshot holds the token dictionary, the tokenized collection, and one
/// CSR inverted index per shard (ComputeShardRanges partition, global set
/// ids). The on-disk container is versioned, checksummed, and flat: the CSR
/// offsets and postings arrays are written as contiguous blocks and loaded
/// with single bulk reads — no per-posting parsing, mirroring how they live
/// in memory (the KVell-style "disk layout == memory layout" discipline).
///
/// File layout (all integers little-endian; see docs/ARCHITECTURE.md):
///
///   [0..8)    magic "SMSNAP01"
///   [8..12)   format version (u32, currently 1)
///   [12..16)  endianness marker (u32 0x01020304, raw bytes)
///   [16..24)  payload length in bytes (u64)
///   [24..28)  CRC-32 of the payload (u32)
///   [28..)    payload: META, DICT, COLL, then one SHRD section per shard,
///             each section tagged `u32 fourcc + u64 body length`.
///
/// Integrity model: the CRC is the corruption gate — truncation, bit flips,
/// and length lies are all rejected with a clean error (every read is
/// bounds-checked and every count is validated against the remaining bytes
/// *before* any allocation, so even a forged checksum cannot cause
/// out-of-buffer reads or OOM at load time). Posting values are bounds-
/// checked against the shard range and per-set element counts too, because
/// query code indexes by them without further checks; element token ids are
/// only ever used as bounds-checked probe keys or opaque comparison values,
/// so they need no such gate.
struct Snapshot {
  /// One shard: its contiguous global set-id range and the CSR index over it.
  struct Shard {
    SetIdRange range;     ///< Global set ids this shard owns.
    InvertedIndex index;  ///< Postings restricted to `range`, global ids.
  };

  /// Tokenization the collection was built with. A shard worker must query
  /// with a compatible φ: word tokens serve Jaccard, q-grams serve the edit
  /// similarities — shard-run refuses mismatches instead of silently
  /// producing different results.
  TokenizerKind tokenizer = TokenizerKind::kWord;
  /// Effective q-gram length used at build time (0 for word tokens).
  int q = 0;
  /// The tokenized collection, dictionary included.
  Collection data;
  /// Per-shard ranges and indexes; ranges partition [0, data.NumSets()).
  std::vector<Shard> shards;

  /// Shorthand for shards.size().
  size_t num_shards() const { return shards.size(); }
};

/// Snapshot container magic (8 bytes) and current format version. The
/// version bumps whenever the payload layout changes incompatibly; loaders
/// reject any version they do not know.
inline constexpr char kSnapshotMagic[8] = {'S', 'M', 'S', 'N',
                                           'A', 'P', '0', '1'};
inline constexpr uint32_t kSnapshotVersion = 1;
/// Little-endian detector: written as a native u32, so a snapshot moved to
/// an opposite-endian machine fails the marker check instead of loading
/// garbage.
inline constexpr uint32_t kSnapshotEndianMarker = 0x01020304u;
/// Header field offsets (bytes) — exposed so tests can surgically corrupt
/// specific fields.
inline constexpr size_t kSnapshotVersionOffset = 8;
inline constexpr size_t kSnapshotEndianOffset = 12;
inline constexpr size_t kSnapshotPayloadLenOffset = 16;
inline constexpr size_t kSnapshotCrcOffset = 24;
inline constexpr size_t kSnapshotHeaderSize = 28;

/// CRC-32 (reflected, polynomial 0xEDB88320) over `size` bytes. Exposed so
/// tests can craft checksum-valid-but-structurally-lying files and verify
/// the loader's bounds checks stand on their own.
uint32_t SnapshotCrc32(const void* data, size_t size);

/// Builds a snapshot in memory: partitions [0, data.NumSets()) with
/// ComputeShardRanges(num_shards) and builds each shard's CSR index (up to
/// `num_threads` parallel builders). `tokenizer`/`q` must describe how
/// `data` was tokenized; they are recorded for shard-run compatibility
/// checks. num_shards must be >= 1.
Snapshot BuildSnapshot(Collection data, TokenizerKind tokenizer, int q,
                       uint32_t num_shards, int num_threads = 1);

/// Writes `snap` to `path`. Returns "" on success, else a one-line error.
std::string SaveSnapshot(const Snapshot& snap, const std::string& path);

/// Loads a snapshot from `path` into `*out`. Returns "" on success, else a
/// one-line error describing the failure (missing file, bad magic or
/// version, checksum mismatch, truncation, malformed section, ...); on
/// failure `*out` is left untouched. The CSR arrays are restored with bulk
/// block reads — no per-posting parsing.
std::string LoadSnapshot(const std::string& path, Snapshot* out);

}  // namespace silkmoth

#endif  // SILKMOTH_SNAPSHOT_SNAPSHOT_H_
