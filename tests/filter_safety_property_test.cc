// Filter safety properties on randomized corpora:
//  1. The NN search result is always an upper bound on the true nearest
//     neighbor similarity — in particular for edit similarities, where two
//     strings sharing no q-gram still have Eds up to |r|/(|r|+g)
//     (regression for the unshared-bound floor).
//  2. Neither the check filter nor the NN filter ever prunes a candidate
//     whose true matching score reaches θ.

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "core/relatedness.h"
#include "datagen/builders.h"
#include "datagen/dblp.h"
#include "filter/check_filter.h"
#include "filter/nn_filter.h"
#include "matching/verifier.h"
#include "sig/scheme.h"
#include "util/rng.h"

namespace silkmoth {
namespace {

Collection TitleData(size_t n, uint64_t seed, int q) {
  DblpParams p;
  p.num_titles = n;
  p.vocabulary = 50;
  p.min_words = 1;
  p.max_words = 3;
  p.duplicate_rate = 0.35;
  p.typo_rate = 0.35;
  p.seed = seed;
  return BuildCollection(GenerateDblpSets(p), TokenizerKind::kQGram, q);
}

TEST(NnSearchSafetyTest, UpperBoundsTrueNearestNeighborForEds) {
  Options opt;
  opt.metric = Relatedness::kSimilarity;
  opt.phi = SimilarityKind::kEds;
  opt.delta = 0.5;
  opt.alpha = 0.0;
  opt.q = 2;
  Collection data = TitleData(25, 5, 2);
  InvertedIndex index;
  index.Build(data);
  const ElementSimilarity* sim = GetSimilarity(opt.phi);

  size_t floor_cases = 0;
  for (size_t r = 0; r < data.sets.size(); r += 2) {
    for (const Element& e : data.sets[r].elements) {
      for (uint32_t s = 0; s < data.sets.size(); ++s) {
        double truth = 0.0;
        for (const Element& se : data.sets[s].elements) {
          truth = std::max(truth, sim->Score(e, se));
        }
        const double estimate = NnSearch(e, s, data, index, opt);
        EXPECT_GE(estimate, truth - 1e-9)
            << "NN underestimate: ref set " << r << " elem '" << e.text
            << "' target set " << s;
        // Count cases where the unshared-bound floor was load-bearing:
        // truth positive yet no q-gram shared.
        if (truth > 0 && estimate > truth + 1e-9) ++floor_cases;
      }
    }
  }
  // The regression scenario (similar strings without shared grams) must
  // actually occur in this corpus for the test to mean anything.
  EXPECT_GT(floor_cases, 0u);
}

TEST(NnSearchSafetyTest, ExactForJaccard) {
  Options opt;
  opt.metric = Relatedness::kSimilarity;
  opt.phi = SimilarityKind::kJaccard;
  opt.delta = 0.5;
  Rng rng(77);
  RawSets raw;
  for (int s = 0; s < 20; ++s) {
    std::vector<std::string> elems;
    for (int e = 0; e < 3; ++e) {
      std::string text;
      for (int w = 0; w < 3; ++w) {
        if (!text.empty()) text.push_back(' ');
        text += "w" + std::to_string(rng.NextBounded(12));
      }
      elems.push_back(text);
    }
    raw.push_back(elems);
  }
  Collection data = BuildCollection(raw, TokenizerKind::kWord);
  InvertedIndex index;
  index.Build(data);
  const ElementSimilarity* sim = GetSimilarity(opt.phi);
  for (const Element& e : data.sets[0].elements) {
    for (uint32_t s = 0; s < data.sets.size(); ++s) {
      double truth = 0.0;
      for (const Element& se : data.sets[s].elements) {
        truth = std::max(truth, sim->Score(e, se));
      }
      // For Jaccard the index search is exhaustive: exact, not just a bound.
      EXPECT_NEAR(NnSearch(e, s, data, index, opt), truth, 1e-12);
    }
  }
}

class FilterNoFalseNegativeSweep
    : public ::testing::TestWithParam<SimilarityKind> {};

TEST_P(FilterNoFalseNegativeSweep, RelatedSetsSurviveBothFilters) {
  const SimilarityKind phi = GetParam();
  const bool edit = IsEditSimilarity(phi);
  Options opt;
  opt.metric = Relatedness::kSimilarity;
  opt.phi = phi;
  opt.delta = 0.6;
  opt.alpha = edit ? 0.7 : 0.4;
  opt.q = edit ? MaxQForAlpha(opt.alpha) : 0;

  Collection data;
  if (edit) {
    data = TitleData(30, 9, opt.q);
  } else {
    Rng rng(31);
    RawSets raw;
    for (int s = 0; s < 30; ++s) {
      std::vector<std::string> elems;
      const size_t ne = 1 + rng.NextBounded(4);
      for (size_t e = 0; e < ne; ++e) {
        std::string text;
        const size_t nw = 1 + rng.NextBounded(4);
        for (size_t w = 0; w < nw; ++w) {
          if (!text.empty()) text.push_back(' ');
          text += "v" + std::to_string(rng.NextBounded(14));
        }
        elems.push_back(text);
      }
      raw.push_back(elems);
    }
    data = BuildCollection(raw, TokenizerKind::kWord);
  }

  InvertedIndex index;
  index.Build(data);
  const MaxMatchingVerifier verifier(GetSimilarity(phi), opt.alpha, false);

  size_t related_seen = 0;
  for (size_t r = 0; r < data.sets.size(); ++r) {
    const SetRecord& ref = data.sets[r];
    if (ref.Empty()) continue;
    SchemeParams params;
    params.scheme = SignatureSchemeKind::kDichotomy;
    params.phi = phi;
    params.theta = MatchingThreshold(opt.delta, ref.Size());
    params.alpha = opt.alpha;
    params.q = opt.q;
    const Signature sig = GenerateSignature(ref, index, params);
    if (!sig.valid) continue;

    auto candidates =
        SelectAndCheckCandidates(ref, sig, data, index, opt, true);
    auto refined = NnFilterCandidates(ref, sig, candidates, data, index, opt);

    for (uint32_t s = 0; s < data.sets.size(); ++s) {
      const SetRecord& set = data.sets[s];
      const double m = verifier.Score(ref, set);
      if (!IsRelated(m, ref.Size(), set.Size(), opt)) continue;
      ++related_seen;
      bool survived = false;
      for (const Candidate& c : refined) survived |= c.set_id == s;
      EXPECT_TRUE(survived)
          << "filters dropped a related set: ref " << r << " set " << s
          << " m=" << m;
    }
  }
  EXPECT_GT(related_seen, 10u);  // Sweep must exercise real positives.
}

INSTANTIATE_TEST_SUITE_P(Phis, FilterNoFalseNegativeSweep,
                         ::testing::Values(SimilarityKind::kJaccard,
                                           SimilarityKind::kEds,
                                           SimilarityKind::kNeds),
                         [](const auto& info) {
                           return SimilarityKindName(info.param);
                         });

}  // namespace
}  // namespace silkmoth
