#ifndef SILKMOTH_CORE_STATS_H_
#define SILKMOTH_CORE_STATS_H_

#include <cstddef>
#include <string>

#include "filter/check_filter.h"
#include "filter/nn_filter.h"

namespace silkmoth {

/// Aggregate statistics for one or more search passes. Every counter is a
/// plain size_t; parallel discovery keeps one instance per worker and merges
/// at the end, so no atomics are needed.
struct SearchStats {
  size_t references = 0;          ///< Search passes executed.
  size_t fallback_scans = 0;      ///< Passes with no valid signature (§7.3).
  size_t signature_tokens = 0;    ///< Flattened probe tokens generated.
  size_t initial_candidates = 0;  ///< Sets touched by signature probes.
  size_t after_size = 0;          ///< Surviving the size bounds.
  size_t after_check = 0;         ///< Surviving the check filter.
  size_t after_nn = 0;            ///< Surviving the NN filter.
  size_t verifications = 0;       ///< Maximum matchings computed.
  size_t results = 0;             ///< Related pairs found.
  size_t similarity_calls = 0;    ///< φ evaluations (filters + verification).
  size_t reduced_pairs = 0;       ///< Identical pairs removed in verification.
  size_t bound_accepts = 0;       ///< Verifications decided without the
                                  ///< solver: by the greedy lower bound, or
                                  ///< trivially (both sides fully consumed
                                  ///< by reduction). For greedy-decided
                                  ///< accepts the search pass still runs
                                  ///< one solve on the ready matrix to
                                  ///< report the pair's exact score;
                                  ///< trivial ones are already exact.
  size_t bound_rejects = 0;       ///< Verifications settled by the maxima
                                  ///< upper bound (no Hungarian run at all).
  size_t exact_solves = 0;        ///< Hungarian runs in the ambiguous band
                                  ///< lower < θ <= upper.

  double signature_seconds = 0.0;
  double selection_seconds = 0.0;  ///< Candidate selection + check filter.
  double nn_seconds = 0.0;
  double verify_seconds = 0.0;

  /// Merges `other` into this.
  void Merge(const SearchStats& other);

  /// Multi-line human-readable dump.
  std::string ToString() const;
};

}  // namespace silkmoth

#endif  // SILKMOTH_CORE_STATS_H_
