#include "text/tokenizer.h"

#include <algorithm>
#include <cctype>

namespace silkmoth {

std::vector<std::string_view> SplitWords(std::string_view text) {
  std::vector<std::string_view> words;
  size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    size_t start = i;
    while (i < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[i]))) {
      ++i;
    }
    if (i > start) words.push_back(text.substr(start, i - start));
  }
  return words;
}

std::string PadForQGrams(std::string_view text, int q) {
  std::string padded(text);
  padded.append(static_cast<size_t>(q > 0 ? q - 1 : 0), kQGramPad);
  return padded;
}

Tokenizer::Tokenizer(TokenizerKind kind, int q) : kind_(kind), q_(q) {}

Element Tokenizer::MakeElement(std::string_view text,
                               TokenDictionary* dict) const {
  Element elem;
  elem.text.assign(text);
  if (kind_ == TokenizerKind::kWord) {
    for (std::string_view w : SplitWords(text)) {
      elem.tokens.push_back(dict->Intern(w));
    }
  } else {
    const std::string padded = PadForQGrams(text, q_);
    if (!text.empty()) {
      // All q-grams (index/probe tokens). The padded string has exactly
      // |text| q-grams.
      for (size_t i = 0; i + static_cast<size_t>(q_) <= padded.size(); ++i) {
        elem.tokens.push_back(
            dict->Intern(std::string_view(padded).substr(i, q_)));
      }
      // Non-overlapping q-chunks (signature tokens), ceil(|text|/q) of them.
      for (size_t i = 0; i < text.size(); i += static_cast<size_t>(q_)) {
        elem.chunks.push_back(
            dict->Intern(std::string_view(padded).substr(i, q_)));
      }
      std::sort(elem.chunks.begin(), elem.chunks.end());
    }
  }
  std::sort(elem.tokens.begin(), elem.tokens.end());
  elem.tokens.erase(std::unique(elem.tokens.begin(), elem.tokens.end()),
                    elem.tokens.end());
  return elem;
}

SetRecord Tokenizer::MakeSet(const std::vector<std::string>& element_texts,
                             TokenDictionary* dict) const {
  SetRecord set;
  set.elements.reserve(element_texts.size());
  for (const auto& text : element_texts) {
    Element e = MakeElement(text, dict);
    // Empty elements carry no information and break the per-element weight
    // 1/|r_i|; the builders drop them.
    if (!e.tokens.empty()) set.elements.push_back(std::move(e));
  }
  return set;
}

}  // namespace silkmoth
