// Options::exact_scores contract, on randomized corpora across metrics:
//
//  1. exact_scores == true (the default) is byte-identical to the engine's
//     historical behavior: every reported score is the exact maximum
//     matching score (pinned against the brute-force oracle), and
//     bound_only_scores stays 0.
//  2. exact_scores == false reports the SAME pair set — the related/
//     unrelated decision never changes — but bound-accepted pairs carry the
//     greedy lower bound: score <= exact, relatedness still >= δ (within
//     slack), and every understated score is counted in bound_only_scores.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/brute_force.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "datagen/builders.h"
#include "datagen/dblp.h"
#include "text/similarity.h"

namespace silkmoth {
namespace {

struct ScoreCase {
  const char* name;
  Relatedness metric;
  double delta;
};

Collection MakeData(size_t sets, uint64_t seed) {
  DblpParams p;
  p.num_titles = sets;
  p.vocabulary = 40;
  p.min_words = 2;
  p.max_words = 6;
  p.duplicate_rate = 0.45;  // Near-duplicates make bound accepts common.
  p.typo_rate = 0.2;
  p.seed = seed;
  return BuildCollection(GenerateDblpSets(p), TokenizerKind::kWord);
}

TEST(ExactScoresTest, ExactModeMatchesOracleAndApproxKeepsPairSet) {
  const ScoreCase kCases[] = {
      {"similarity", Relatedness::kSimilarity, 0.5},
      {"containment", Relatedness::kContainment, 0.6},
  };
  size_t approx_reports_seen = 0;
  for (const ScoreCase& cfg : kCases) {
    for (uint64_t seed : {3u, 77u}) {
      SCOPED_TRACE(std::string(cfg.name) + " seed=" + std::to_string(seed));
      Collection data = MakeData(32, seed);
      Options exact_opt;
      exact_opt.metric = cfg.metric;
      exact_opt.delta = cfg.delta;
      Options approx_opt = exact_opt;
      approx_opt.exact_scores = false;

      SilkMoth exact_engine(&data, exact_opt);
      SilkMoth approx_engine(&data, approx_opt);
      ASSERT_TRUE(exact_engine.ok());
      ASSERT_TRUE(approx_engine.ok());

      SearchStats exact_stats, approx_stats;
      const std::vector<PairMatch> exact = exact_engine.DiscoverSelf(
          &exact_stats);
      const std::vector<PairMatch> approx = approx_engine.DiscoverSelf(
          &approx_stats);

      // Pin 1: exact mode IS the historical output — oracle-identical, and
      // never a bound-only score.
      BruteForce oracle(&data, exact_opt);
      EXPECT_EQ(exact, oracle.DiscoverSelf());
      EXPECT_EQ(exact_stats.bound_only_scores, 0u);

      // Pin 2: approx mode keeps the pair set; scores only ever drop
      // (often the greedy bound *is* the optimum, so equality is common),
      // every strict drop is one of the counted bound-only reports, and
      // each reported bound still clears δ.
      ASSERT_EQ(approx.size(), exact.size());
      size_t understated = 0;
      for (size_t i = 0; i < exact.size(); ++i) {
        EXPECT_EQ(approx[i].ref_id, exact[i].ref_id);
        EXPECT_EQ(approx[i].set_id, exact[i].set_id);
        EXPECT_LE(approx[i].matching_score,
                  exact[i].matching_score + kFloatSlack);
        EXPECT_GE(approx[i].relatedness, exact_opt.delta - 1e-6);
        if (approx[i].matching_score !=
            exact[i].matching_score) {
          ++understated;
        }
      }
      EXPECT_LE(understated, approx_stats.bound_only_scores);
      // Every bound-only report is a bound-settled accept that skipped its
      // reporting solve: the saved solves are exactly the counter.
      EXPECT_LE(approx_stats.bound_only_scores,
                approx_stats.bound_accepts);
      // Decisions themselves must be untouched: same funnel either way.
      EXPECT_EQ(approx_stats.verifications, exact_stats.verifications);
      EXPECT_EQ(approx_stats.bound_accepts, exact_stats.bound_accepts);
      EXPECT_EQ(approx_stats.bound_rejects, exact_stats.bound_rejects);
      approx_reports_seen += approx_stats.bound_only_scores;
    }
  }
  // The sweep must actually exercise the opt-out at least once, or the
  // assertions above are vacuous.
  EXPECT_GT(approx_reports_seen, 0u);
}

// The opt-out threads through the sharded engine unchanged: per-shard
// counters pick up bound_only_scores and the pair set still matches the
// exact run's.
TEST(ExactScoresTest, ShardedApproxKeepsPairSet) {
  Collection data = MakeData(40, 9);
  Options exact_opt;
  exact_opt.delta = 0.5;
  exact_opt.num_shards = 3;
  exact_opt.num_threads = 2;
  Options approx_opt = exact_opt;
  approx_opt.exact_scores = false;

  ShardedEngine exact_engine(&data, exact_opt);
  ShardedEngine approx_engine(&data, approx_opt);
  ASSERT_TRUE(exact_engine.ok());
  ASSERT_TRUE(approx_engine.ok());
  ShardedSearchStats approx_stats;
  const std::vector<PairMatch> exact = exact_engine.DiscoverSelf();
  const std::vector<PairMatch> approx =
      approx_engine.DiscoverSelf(&approx_stats);

  ASSERT_EQ(approx.size(), exact.size());
  size_t understated = 0;
  for (size_t i = 0; i < exact.size(); ++i) {
    EXPECT_EQ(approx[i].ref_id, exact[i].ref_id);
    EXPECT_EQ(approx[i].set_id, exact[i].set_id);
    EXPECT_LE(approx[i].matching_score,
              exact[i].matching_score + kFloatSlack);
    if (approx[i].matching_score != exact[i].matching_score) ++understated;
  }
  EXPECT_LE(understated, approx_stats.Total().bound_only_scores);
  EXPECT_GT(approx_stats.Total().bound_only_scores, 0u);
}

}  // namespace
}  // namespace silkmoth
