#include "matching/hungarian.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace silkmoth {
namespace {

// Exhaustive oracle: tries every injection of the smaller side into the
// larger side.
double BruteForceMatching(const WeightMatrix& w) {
  const size_t r = w.rows(), c = w.cols();
  const bool flip = r > c;
  const size_t n = flip ? c : r;
  const size_t m = flip ? r : c;
  std::vector<size_t> perm(m);
  std::iota(perm.begin(), perm.end(), size_t{0});
  double best = 0.0;
  do {
    double score = 0.0;
    for (size_t i = 0; i < n; ++i) {
      score += flip ? w.At(perm[i], i) : w.At(i, perm[i]);
    }
    best = std::max(best, score);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(HungarianTest, EmptyMatrix) {
  EXPECT_DOUBLE_EQ(MaxWeightMatchingScore(WeightMatrix(0, 0)), 0.0);
  EXPECT_DOUBLE_EQ(MaxWeightMatchingScore(WeightMatrix(3, 0)), 0.0);
  EXPECT_DOUBLE_EQ(MaxWeightMatchingScore(WeightMatrix(0, 3)), 0.0);
}

TEST(HungarianTest, SingleCell) {
  WeightMatrix w(1, 1);
  w.At(0, 0) = 0.7;
  EXPECT_DOUBLE_EQ(MaxWeightMatchingScore(w), 0.7);
}

TEST(HungarianTest, IdentityIsOptimal) {
  WeightMatrix w(3, 3);
  for (size_t i = 0; i < 3; ++i) w.At(i, i) = 1.0;
  std::vector<int> assign;
  EXPECT_DOUBLE_EQ(MaxWeightMatching(w, &assign), 3.0);
  for (size_t i = 0; i < 3; ++i) EXPECT_EQ(assign[i], static_cast<int>(i));
}

TEST(HungarianTest, MustAvoidGreedyTrap) {
  // Greedy (pick 0.9 first) yields 0.9 + 0.1 = 1.0; optimal is 0.8+0.8=1.6.
  WeightMatrix w(2, 2);
  w.At(0, 0) = 0.9;
  w.At(0, 1) = 0.8;
  w.At(1, 0) = 0.8;
  w.At(1, 1) = 0.1;
  EXPECT_NEAR(MaxWeightMatchingScore(w), 1.6, 1e-12);
}

TEST(HungarianTest, PaperExampleScores) {
  // Example 2: r1->s41 0.8, r2->s42 1.0, r3->s43 3/7.
  WeightMatrix w(3, 3);
  w.At(0, 0) = 0.8;
  w.At(0, 1) = 0.0;
  w.At(0, 2) = 1.0 / 8.0;
  w.At(1, 0) = 0.0;
  w.At(1, 1) = 1.0;
  w.At(1, 2) = 3.0 / 7.0;
  w.At(2, 0) = 1.0 / 8.0;
  w.At(2, 1) = 2.0 / 8.0;
  w.At(2, 2) = 3.0 / 7.0;
  EXPECT_NEAR(MaxWeightMatchingScore(w), 0.8 + 1.0 + 3.0 / 7.0, 1e-9);
}

TEST(HungarianTest, RectangularWide) {
  WeightMatrix w(2, 4);
  w.At(0, 3) = 0.9;
  w.At(1, 3) = 1.0;  // Both want column 3; one must settle.
  w.At(1, 0) = 0.6;
  EXPECT_NEAR(MaxWeightMatchingScore(w), 0.9 + 0.6, 1e-12);
}

TEST(HungarianTest, RectangularTall) {
  WeightMatrix w(4, 2);
  w.At(3, 0) = 0.9;
  w.At(3, 1) = 1.0;
  w.At(0, 0) = 0.6;
  EXPECT_NEAR(MaxWeightMatchingScore(w), 1.0 + 0.6, 1e-12);
}

TEST(HungarianTest, AllZeros) {
  WeightMatrix w(3, 5);
  EXPECT_DOUBLE_EQ(MaxWeightMatchingScore(w), 0.0);
}

TEST(HungarianTest, AssignmentIsConsistentWithScore) {
  Rng rng(77);
  WeightMatrix w(4, 6);
  for (size_t i = 0; i < 4; ++i) {
    for (size_t j = 0; j < 6; ++j) w.At(i, j) = rng.NextDouble();
  }
  std::vector<int> assign;
  const double score = MaxWeightMatching(w, &assign);
  double recomputed = 0.0;
  std::vector<bool> used(6, false);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_GE(assign[i], 0);
    ASSERT_LT(assign[i], 6);
    EXPECT_FALSE(used[static_cast<size_t>(assign[i])]) << "column reused";
    used[static_cast<size_t>(assign[i])] = true;
    recomputed += w.At(i, static_cast<size_t>(assign[i]));
  }
  EXPECT_NEAR(score, recomputed, 1e-9);
}

struct RandomCase {
  size_t rows;
  size_t cols;
  uint64_t seed;
};

class HungarianRandomSweep : public ::testing::TestWithParam<RandomCase> {};

TEST_P(HungarianRandomSweep, MatchesBruteForce) {
  const RandomCase& rc = GetParam();
  Rng rng(rc.seed);
  for (int trial = 0; trial < 30; ++trial) {
    WeightMatrix w(rc.rows, rc.cols);
    for (size_t i = 0; i < rc.rows; ++i) {
      for (size_t j = 0; j < rc.cols; ++j) {
        // Quantize to quarters: exercises heavy ties.
        w.At(i, j) = static_cast<double>(rng.NextBounded(5)) / 4.0;
      }
    }
    EXPECT_NEAR(MaxWeightMatchingScore(w), BruteForceMatching(w), 1e-9)
        << rc.rows << "x" << rc.cols << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, HungarianRandomSweep,
    ::testing::Values(RandomCase{1, 1, 1}, RandomCase{2, 2, 2},
                      RandomCase{3, 3, 3}, RandomCase{4, 4, 4},
                      RandomCase{5, 5, 5}, RandomCase{6, 6, 6},
                      RandomCase{2, 5, 7}, RandomCase{5, 2, 8},
                      RandomCase{3, 6, 9}, RandomCase{6, 3, 10},
                      RandomCase{1, 7, 11}, RandomCase{7, 1, 12}));

}  // namespace
}  // namespace silkmoth
