#!/usr/bin/env bash
# Supervised orchestration under injected faults, against the real binary:
#
#   fault    {worker crash, deadline timeout, torn result write,
#             corrupt result write}
#   × mode   {retry-succeeds, exhausted-strict, exhausted-allow-partial}
#
# The pinned contract (docs/ARCHITECTURE.md, "Supervised orchestration &
# failure model"):
#   - a fault on one attempt followed by a clean retry merges to output
#     byte-identical to the fault-free `discover --shards N` stream;
#   - exhausted retries in strict mode exit 5 naming the failed shards;
#   - exhausted retries with --allow-partial exit 6 and stamp the covered
#     shard ranges ahead of the pairs;
#   - the run report records every attempt with its classified outcome.
#
# Usage: orchestrator_fault_matrix_test.sh /path/to/silkmoth_cli
set -euo pipefail

CLI="${1:?usage: orchestrator_fault_matrix_test.sh /path/to/silkmoth_cli}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT
# Failed runs keep their workdir (for the logs); point the CLI's auto
# workdirs inside $TMP so the trap cleans those up too.
export TMPDIR="$TMP"

fail() { echo "FAIL: $*" >&2; exit 1; }

SHARDS=3
BACKOFF=(--backoff-base 0.01 --backoff-cap 0.05)

"$CLI" generate dblp 150 "$TMP/data.txt" > /dev/null

# The fault-free reference stream every surviving run must reproduce.
"$CLI" discover --data "$TMP/data.txt" --shards $SHARDS \
  | grep -v '^#' > "$TMP/want.txt"
[ -s "$TMP/want.txt" ] || fail "reference discover produced no pairs"

# Fault-free supervised run: byte parity + a clean report.
rc=0
"$CLI" run --data "$TMP/data.txt" --shards $SHARDS "${BACKOFF[@]}" \
  --report "$TMP/clean.json" > "$TMP/clean.out" 2>&1 || rc=$?
[ "$rc" -eq 0 ] || fail "fault-free run: exit $rc: $(cat "$TMP/clean.out")"
grep -v '^#' "$TMP/clean.out" > "$TMP/clean.pairs"
cmp -s "$TMP/want.txt" "$TMP/clean.pairs" \
  || fail "fault-free run: output differs from discover --shards $SHARDS"
grep -q '"ok":true' "$TMP/clean.json" || fail "fault-free run: report not ok"
grep -q '"retries":0' "$TMP/clean.json" \
  || fail "fault-free run: unexpected retries"
echo "ok: fault-free run (byte parity, clean report)"

# fault NAME SPEC OUTCOME [EXTRA_RUN_FLAGS...]: one row of the matrix.
#   SPEC     the SILKMOTH_FAULT spec armed in shard 1's worker
#   OUTCOME  the classified outcome the report must record for attempt 1
run_matrix_row() {
  local name="$1" spec="$2" outcome="$3"
  shift 3
  local extra=("$@")

  # --- retry-succeeds: fault on attempt 1 only; attempt 2 is clean --------
  local rc=0
  "$CLI" run --data "$TMP/data.txt" --shards $SHARDS "${BACKOFF[@]}" \
    "${extra[@]}" --report "$TMP/$name.retry.json" \
    --inject "shard=1,attempt=1,fault=$spec" \
    > "$TMP/$name.retry.out" 2>&1 || rc=$?
  [ "$rc" -eq 0 ] \
    || fail "$name/retry: exit $rc: $(tail -n 5 "$TMP/$name.retry.out")"
  grep -v '^#' "$TMP/$name.retry.out" > "$TMP/$name.retry.pairs"
  cmp -s "$TMP/want.txt" "$TMP/$name.retry.pairs" \
    || fail "$name/retry: output differs from the fault-free stream"
  grep -q "\"outcome\":\"$outcome\"" "$TMP/$name.retry.json" \
    || fail "$name/retry: report missing outcome '$outcome'"
  grep -q '"retries":0' "$TMP/$name.retry.json" \
    && fail "$name/retry: report claims zero retries"
  echo "ok: $name / retry-succeeds (byte parity, outcome=$outcome)"

  # --- exhausted-strict: fault on every attempt, no degraded mode ---------
  rc=0
  "$CLI" run --data "$TMP/data.txt" --shards $SHARDS "${BACKOFF[@]}" \
    "${extra[@]}" --retries 1 \
    --inject "shard=1,attempt=0,fault=$spec" \
    > "$TMP/$name.strict.out" 2> "$TMP/$name.strict.err" || rc=$?
  [ "$rc" -eq 5 ] || fail "$name/strict: expected exit 5, got $rc"
  grep -q "shard 1:" "$TMP/$name.strict.err" \
    || fail "$name/strict: stderr does not name shard 1"
  echo "ok: $name / exhausted-strict (exit 5, shard named)"

  # --- exhausted-allow-partial: same faults, degraded stamped merge -------
  rc=0
  "$CLI" run --data "$TMP/data.txt" --shards $SHARDS "${BACKOFF[@]}" \
    "${extra[@]}" --retries 1 --allow-partial \
    --report "$TMP/$name.partial.json" \
    --inject "shard=1,attempt=0,fault=$spec" \
    > "$TMP/$name.partial.out" 2> "$TMP/$name.partial.err" || rc=$?
  [ "$rc" -eq 6 ] || fail "$name/partial: expected exit 6, got $rc"
  grep -q "# partial coverage: 2 of $SHARDS shards" "$TMP/$name.partial.out" \
    || fail "$name/partial: missing coverage stamp"
  grep -q "# covered shards: 0,2" "$TMP/$name.partial.out" \
    || fail "$name/partial: wrong covered-shards line"
  grep -q "# missing shards: 1" "$TMP/$name.partial.out" \
    || fail "$name/partial: wrong missing-shards line"
  grep -q "# covered set-id ranges: \[" "$TMP/$name.partial.out" \
    || fail "$name/partial: missing covered set-id ranges"
  grep -q '"partial":true' "$TMP/$name.partial.json" \
    || fail "$name/partial: report not marked partial"
  grep -q '"failed_shards":\[1\]' "$TMP/$name.partial.json" \
    || fail "$name/partial: report failed_shards wrong"
  # The partial stream must be a subset of the fault-free stream: every
  # emitted pair also appears in the reference.
  grep -v '^#' "$TMP/$name.partial.out" > "$TMP/$name.partial.pairs"
  while IFS= read -r line; do
    grep -qF "$line" "$TMP/want.txt" \
      || fail "$name/partial: pair not in the fault-free stream: $line"
  done < "$TMP/$name.partial.pairs"
  echo "ok: $name / exhausted-allow-partial (exit 6, coverage stamped)"
}

run_matrix_row crash   "worker-start:kill"        signal
run_matrix_row exit    "worker-start:exit:9"      exit-nonzero
run_matrix_row torn    "result-write:torn:20"     corrupt-result
run_matrix_row corrupt "result-write:corrupt:10"  corrupt-result
run_matrix_row timeout "worker-start:sleep:5000"  timeout --shard-deadline 0.5

# --- the acceptance scenario: multiple simultaneous faults -----------------
# First attempts of shards 0 and 1 are SIGKILLed and shard 2's first result
# write is torn; every retry is clean, so the merged output must be
# byte-identical to the fault-free stream.
rc=0
"$CLI" run --data "$TMP/data.txt" --shards $SHARDS "${BACKOFF[@]}" \
  --report "$TMP/multi.json" \
  --inject "shard=0,attempt=1,fault=worker-start:kill" \
  --inject "shard=1,attempt=1,fault=worker-start:kill" \
  --inject "shard=2,attempt=1,fault=result-write:torn:20" \
  > "$TMP/multi.out" 2>&1 || rc=$?
[ "$rc" -eq 0 ] || fail "multi-fault: exit $rc: $(tail -n 5 "$TMP/multi.out")"
grep -v '^#' "$TMP/multi.out" > "$TMP/multi.pairs"
cmp -s "$TMP/want.txt" "$TMP/multi.pairs" \
  || fail "multi-fault: output differs from the fault-free stream"
grep -q '"retries":3' "$TMP/multi.json" \
  || fail "multi-fault: expected exactly 3 retries in the report"
echo "ok: multi-fault acceptance scenario (3 faults, byte parity)"

# --- split snapshots ride the same supervision ------------------------------
rc=0
"$CLI" run --data "$TMP/data.txt" --shards $SHARDS --split "${BACKOFF[@]}" \
  --inject "shard=1,attempt=1,fault=worker-start:kill" \
  > "$TMP/split.out" 2>&1 || rc=$?
[ "$rc" -eq 0 ] || fail "split run: exit $rc: $(tail -n 5 "$TMP/split.out")"
grep -v '^#' "$TMP/split.out" > "$TMP/split.pairs"
cmp -s "$TMP/want.txt" "$TMP/split.pairs" \
  || fail "split run: output differs from the fault-free stream"
echo "ok: split-snapshot run under faults (byte parity)"

# --- SIGTERM cancels cooperatively -----------------------------------------
# A worker wedged mid-commit (result-write:sleep fires after the result's
# .tmp is staged, before the rename) leaves a visible shard*.res.tmp in the
# workdir. SIGTERM to the supervisor must kill the workers, sweep the
# staged .tmp files, and then die with the conventional 128+SIGTERM status.
WD="$TMP/term_wd"
"$CLI" run --data "$TMP/data.txt" --shards $SHARDS "${BACKOFF[@]}" \
  --workdir "$WD" \
  --inject "shard=0,attempt=0,fault=result-write:sleep:8000" \
  > "$TMP/term.out" 2> "$TMP/term.err" &
RUN_PID=$!
tmp_seen=""
for _ in $(seq 1 200); do
  if ls "$WD"/shard*.res.tmp > /dev/null 2>&1; then tmp_seen=yes; break; fi
  kill -0 "$RUN_PID" 2> /dev/null || break
  sleep 0.05
done
[ "$tmp_seen" = yes ] || fail "sigterm: no staged shard*.res.tmp appeared in $WD"
kill -TERM "$RUN_PID"
rc=0
wait "$RUN_PID" || rc=$?
[ "$rc" -eq 143 ] || fail "sigterm: expected exit 143 (128+SIGTERM), got $rc"
grep -q "cancelled by SIGTERM" "$TMP/term.err" \
  || fail "sigterm: missing cancellation diagnostic: $(cat "$TMP/term.err")"
ls "$WD"/*.tmp > /dev/null 2>&1 \
  && fail "sigterm: staged .tmp files survived cancellation"
[ -d "$WD" ] || fail "sigterm: user-supplied workdir was deleted"
if command -v pgrep > /dev/null 2>&1; then
  pgrep -f "shard-run --snapshot $WD" > /dev/null 2>&1 \
    && fail "sigterm: orphan shard-run worker left running"
fi
echo "ok: SIGTERM cancellation (exit 143, .tmp swept, no orphans)"

echo "PASS: orchestrator fault matrix"
