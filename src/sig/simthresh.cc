#include "sig/simthresh.h"

#include <cmath>

#include "text/similarity.h"

namespace silkmoth {

size_t SimThreshUnits(const ElementUnits& element, double alpha) {
  if (alpha <= kFloatSlack) return kNoSimThresh;
  double required;
  if (element.edit) {
    required =
        std::floor((1.0 - alpha) / alpha * element.size + kFloatSlack) + 1.0;
  } else {
    required = std::floor((1.0 - alpha) * element.size + kFloatSlack) + 1.0;
  }
  const size_t units = static_cast<size_t>(required);
  if (units > element.total_units) return kNoSimThresh;
  return units;
}

}  // namespace silkmoth
