#include "snapshot/delta_shard.h"

#include <limits>
#include <utility>

namespace silkmoth {

DeltaShard::DeltaShard(const Collection* base, TokenizerKind tokenizer, int q)
    : arena_(std::make_shared<ElementArena>()),
      tokenizer_(tokenizer, q),
      base_sets_(base->sets.size()) {
  // Set views are cheap (string_view/span triples); copying them here is
  // what lets combined_ be handed to DiscoverAcrossShards as one
  // contiguous collection without touching base bytes.
  combined_.sets = base->sets;
  combined_.dict = base->dict;
}

DeltaShard::DeltaShard(const DeltaShard& other, int)
    : combined_(other.combined_),
      arena_(other.arena_),
      tokenizer_(other.tokenizer_),
      base_sets_(other.base_sets_),
      oov_tokens_(other.oov_tokens_),
      batches_(other.batches_) {}

std::string DeltaShard::Ingest(const RawSets& raw) {
  if (raw.empty()) return "";
  if (combined_.dict == nullptr) return "delta shard has no dictionary";
  const size_t total = combined_.sets.size() + raw.size();
  if (total > std::numeric_limits<uint32_t>::max()) {
    return "ingest would overflow the 32-bit set-id space";
  }
  const size_t dict_before = combined_.dict->size();
  combined_.sets.reserve(total);
  for (const std::vector<std::string>& texts : raw) {
    SetRecord set =
        tokenizer_.MakeSet(texts, combined_.dict.get(), arena_.get());
    // Each delta set holds the arena so combined() stays self-sufficient
    // for the delta side; base sets keep whatever storage they came with.
    set.arena = arena_;
    combined_.sets.push_back(std::move(set));
  }
  oov_tokens_ += combined_.dict->size() - dict_before;
  batches_ += 1;
  index_.Build(combined_, static_cast<uint32_t>(base_sets_),
               static_cast<uint32_t>(combined_.sets.size()));
  return "";
}

std::shared_ptr<DeltaShard> DeltaShard::WithIngested(const RawSets& raw,
                                                     std::string* err) const {
  std::shared_ptr<DeltaShard> next(new DeltaShard(*this, 0));
  std::string e = next->Ingest(raw);
  if (!e.empty()) {
    if (err != nullptr) *err = std::move(e);
    return nullptr;
  }
  // A no-op ingest (empty batch) leaves the clone's index unbuilt; rebuild
  // so the clone is always queryable on its own.
  if (next->delta_sets() > 0 && raw.empty()) {
    next->index_.Build(next->combined_,
                       static_cast<uint32_t>(next->base_sets_),
                       static_cast<uint32_t>(next->combined_.sets.size()));
  }
  if (err != nullptr) err->clear();
  return next;
}

ShardView DeltaShard::View() const {
  ShardView view;
  view.range = {static_cast<uint32_t>(base_sets_),
                static_cast<uint32_t>(combined_.sets.size())};
  view.index = &index_;
  return view;
}

}  // namespace silkmoth
