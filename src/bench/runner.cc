#include "bench/runner.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/sharded_engine.h"
#include "datagen/builders.h"
#include "datagen/io.h"
#include "serve/server.h"
#include "snapshot/delta_shard.h"
#include "snapshot/snapshot.h"
#include "util/timer.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace silkmoth::bench {

uint64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<uint64_t>(usage.ru_maxrss);  // Already bytes.
#else
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;  // Kilobytes.
#endif
#else
  return 0;
#endif
}

namespace {

/// Per-worker private state; merged by the runner after join, never shared.
struct WorkerState {
  ShardedSearchStats funnel;   ///< Round-0 funnel counters of this slice.
  size_t pairs = 0;            ///< Round-0 related pairs of this slice.
  LatencyHistogram latency;    ///< Every request, every round.
  size_t completed = 0;        ///< Requests finished, every round.
  size_t rounds = 0;           ///< Full passes over this worker's slice.
  std::string error;           ///< First serve-lane failure ("" = clean).
};

/// Serves requests [begin, end) of `blocks` once, recording per-request
/// latency. Funnel counters and pair counts go to `state` only when
/// `count_results` (round 0) — later sustained rounds repeat byte-identical
/// work, so counting them would just scale the deterministic fields by a
/// nondeterministic round count.
void ServeSlice(const ShardedEngine& engine,
                const std::vector<ReferenceBlock>& blocks, size_t begin,
                size_t end, bool count_results, WorkerState* state) {
  for (size_t k = begin; k < end; ++k) {
    ShardedSearchStats* stats = count_results ? &state->funnel : nullptr;
    WallTimer timer;
    const std::vector<PairMatch> matches = engine.Discover(blocks[k], stats);
    state->latency.RecordSeconds(timer.ElapsedSeconds());
    state->completed++;
    if (count_results) state->pairs += matches.size();
  }
}

/// Top-k variant of ServeSlice: each reference set of a request runs
/// SearchTopK against the single-index engine. Query-side accounting
/// (query_sets, oov_tokens) is stamped the way Discover stamps it for
/// external blocks, so the funnel reads the same across serving shapes.
void ServeTopKSlice(const SilkMoth& engine, const Collection& pool,
                    const std::vector<ReferenceBlock>& blocks, size_t begin,
                    size_t end, size_t top_k, bool count_results,
                    WorkerState* state) {
  for (size_t k = begin; k < end; ++k) {
    SearchStats* stats = count_results ? &state->funnel.per_shard[0] : nullptr;
    WallTimer timer;
    size_t pairs = 0;
    for (uint32_t r = blocks[k].range.begin; r < blocks[k].range.end; ++r) {
      pairs += engine.SearchTopK(pool.sets[r], top_k, stats).size();
    }
    state->latency.RecordSeconds(timer.ElapsedSeconds());
    state->completed++;
    if (count_results) {
      state->pairs += pairs;
      stats->query_sets += blocks[k].range.end - blocks[k].range.begin;
      stats->oov_tokens += blocks[k].oov_tokens;
    }
  }
}

/// Serve-lane variant of ServeSlice: requests [begin, end) go through the
/// resident engine's frame path — encode the pre-built raw-set payload as a
/// kQuery frame, Submit(), block until the worker's response lands. The
/// closed-loop wait makes each client's outstanding window exactly 1, so
/// `workers` clients drive `workers` engine lanes the way the daemon's
/// transports do. Any response that is not kResult (shed, deadline, error —
/// a bench run sizes admission so none should occur) aborts the slice into
/// state->error. Pair counting reads the response body: a kResult body is
/// pair lines only, one '\n' per pair (the serve parity contract).
void ServeFrameSlice(serve::ServeEngine& engine,
                     const std::vector<std::string>& payloads, size_t begin,
                     size_t end, bool count_results, WorkerState* state) {
  for (size_t k = begin; k < end; ++k) {
    serve::Frame frame;
    frame.type = serve::FrameType::kQuery;
    frame.request_id = static_cast<uint64_t>(k) + 1;
    frame.body = payloads[k];

    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    serve::Frame response;
    WallTimer timer;
    engine.Submit(std::move(frame), [&](serve::Frame f) {
      std::lock_guard<std::mutex> lock(mu);
      response = std::move(f);
      done = true;
      cv.notify_one();
    });
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return done; });
    }
    state->latency.RecordSeconds(timer.ElapsedSeconds());
    state->completed++;

    if (response.type != serve::FrameType::kResult) {
      state->error = "request " + std::to_string(k) + " answered with " +
                     serve::FrameTypeName(response.type) + ": " +
                     response.body;
      return;
    }
    if (count_results) {
      for (char c : response.body) {
        if (c == '\n') state->pairs++;
      }
    }
  }
}

/// Dynamic-corpus variant of ServeSlice: requests stream through the base
/// shard views plus the delta view via the one DiscoverAcrossShards
/// driver — the same call the CLI's --delta-file replay and the serve
/// daemon's ingest path make, so the bench measures the production
/// base+delta serving shape.
void ServeDeltaSlice(const Collection& universe,
                     std::span<const ShardView> views, const Options& options,
                     const std::vector<ReferenceBlock>& blocks, size_t begin,
                     size_t end, bool count_results, WorkerState* state) {
  for (size_t k = begin; k < end; ++k) {
    ShardedSearchStats* stats = count_results ? &state->funnel : nullptr;
    WallTimer timer;
    const std::vector<PairMatch> matches =
        DiscoverAcrossShards(blocks[k], universe, views, options, stats);
    state->latency.RecordSeconds(timer.ElapsedSeconds());
    state->completed++;
    if (count_results) state->pairs += matches.size();
  }
}

}  // namespace

std::string RunWorkload(const WorkloadSpec& spec, BenchResult* out) {
  *out = BenchResult{};
  out->spec = spec;
  if (spec.requests == 0 || spec.batch == 0) {
    return "workload '" + spec.name + "': requests and batch must be > 0";
  }
  if (spec.workers < 1) {
    return "workload '" + spec.name + "': workers must be >= 1";
  }

  // Build phase: corpus synthesis, tokenization, shard indexes, and the
  // request pool. All single-threaded except the index build — notably
  // BuildQueryBlock interns into the shared dictionary, so it must finish
  // before any worker reads the collection.
  WallTimer build_timer;
  const RawSets corpus_raw =
      GenerateCorpusRaw(spec.corpus, spec.corpus_sets, spec.corpus_seed);
  if (corpus_raw.empty()) {
    return "workload '" + spec.name + "': corpus came out empty";
  }

  // Dynamic-corpus lane: the last delta_sets sets are withheld from the
  // base build and arrive through one timed DeltaShard ingest below.
  const bool dynamic = spec.delta_sets > 0;
  if (dynamic && spec.delta_sets >= corpus_raw.size()) {
    return "workload '" + spec.name +
           "': delta_sets must stay below the corpus size";
  }
  const size_t base_sets =
      corpus_raw.size() - (dynamic ? spec.delta_sets : 0);

  Options options = spec.options;
  options.num_threads = 1;  // Concurrency comes from the client workers.
  const TokenizerKind tok = SpecTokenizer(spec);
  const Collection corpus = BuildCollection(
      dynamic ? RawSets(corpus_raw.begin(), corpus_raw.begin() + base_sets)
              : corpus_raw,
      tok, options.EffectiveQ());

  // Standard serving goes through ShardedEngine::Discover; top-k serving
  // goes through the single-index SilkMoth::SearchTopK (the floating-floor
  // pass has no sharded counterpart), so top-k specs must be single-shard.
  // Serve-lane specs pack the corpus into an in-memory Snapshot and start a
  // resident ServeEngine instead — requests then travel the daemon's
  // admission/worker path.
  const bool topk = spec.top_k > 0;
  const bool serving = spec.serve;
  if (topk && options.num_shards > 1) {
    return "workload '" + spec.name +
           "': top_k serving is single-index; num_shards must be 1";
  }
  if (serving && topk) {
    return "workload '" + spec.name +
           "': the serve engine has no top-k path; top_k must be 0";
  }
  if (dynamic && (topk || serving)) {
    return "workload '" + spec.name +
           "': delta_sets runs the direct lane only; top_k must be 0 and "
           "serve false";
  }
  std::optional<ShardedEngine> engine;
  std::optional<SilkMoth> single;
  std::optional<serve::ServeEngine> served;
  if (serving) {
    serve::ServeOptions so;
    so.query = options;
    so.workers = spec.workers;
    // Size admission so a bench run never sheds and never waits on the
    // byte budget: shedding is the daemon's overload behavior, not the
    // workload under measurement.
    so.max_queue = std::max<size_t>(spec.requests, 1);
    served.emplace(so);
    const std::string err = served->StartWith(
        BuildSnapshot(corpus, tok, options.EffectiveQ(),
                      static_cast<uint32_t>(std::max(options.num_shards, 1)),
                      /*num_threads=*/1));
    if (!err.empty()) {
      return "workload '" + spec.name + "': " + err;
    }
  } else if (topk) {
    single.emplace(&corpus, options);
    if (!single->ok()) {
      return "workload '" + spec.name + "': " + single->error();
    }
  } else {
    engine.emplace(&corpus, options);
    if (!engine->ok()) {
      return "workload '" + spec.name + "': " + engine->error();
    }
  }
  const size_t num_shards =
      topk ? 1
           : (serving ? static_cast<size_t>(std::max(options.num_shards, 1))
                      : engine->num_shards());

  // The timed ingest: the withheld tail goes through one DeltaShard batch,
  // interning its OOV tokens into the shared dictionary — the base-then-
  // delta interning order, so the final dictionary is token-for-token the
  // one a from-scratch build of the full corpus produces (the compaction
  // parity contract). Ingest precedes the request-pool tokenization below
  // for the same reason the CLI replays --delta-file before reading the
  // query: pool OOV must not steal dictionary ids from delta sets.
  std::optional<DeltaShard> delta;
  if (dynamic) {
    delta.emplace(&corpus, tok, options.EffectiveQ());
    const RawSets tail(corpus_raw.begin() + base_sets, corpus_raw.end());
    WallTimer ingest_timer;
    const std::string err = delta->Ingest(tail);
    out->ingest_seconds = ingest_timer.ElapsedSeconds();
    if (!err.empty()) {
      return "workload '" + spec.name + "': ingest: " + err;
    }
    out->delta_sets = delta->delta_sets();
    out->delta_oov_tokens = delta->oov_tokens();
  }
  // The candidate universe requests run against: base + delta combined in
  // the dynamic lane (one shared dictionary), the built corpus otherwise.
  const Collection& universe = dynamic ? delta->combined() : corpus;
  out->corpus_sets = universe.NumSets();
  out->corpus_elements = universe.NumElements();
  out->corpus_tokens = universe.dict->size();

  // Base shard views + the delta view, the dynamic lane's shard universe —
  // one extra trailing funnel slot, the same shape the serve daemon and
  // the --delta-file replay hand to DiscoverAcrossShards.
  std::vector<ShardView> views;
  if (dynamic) {
    views.reserve(num_shards + 1);
    for (size_t s = 0; s < num_shards; ++s) {
      views.push_back(ShardView{engine->shard_range(s),
                                &engine->shard_index(s)});
    }
    views.push_back(delta->View());
  }
  const size_t funnel_slots = dynamic ? views.size() : num_shards;

  const std::vector<uint32_t> stream =
      GenerateRequestStream(spec, corpus_raw.size());
  out->request_stream_hash = HashRequestStream(stream, spec.batch);

  // The request pool: the sampled sets duplicated into one raw payload,
  // tokenized against the corpus dictionary exactly once. Each request is
  // then a range view over the pool block — the same external-block range
  // contract every other discovery path uses.
  RawSets pool_raw;
  pool_raw.reserve(stream.size());
  for (uint32_t id : stream) pool_raw.push_back(corpus_raw[id]);
  Collection query_pool;
  const ReferenceBlock pool_block = BuildQueryBlock(
      pool_raw, tok, options.EffectiveQ(), universe, &query_pool);
  out->pool_oov_tokens = pool_block.oov_tokens;

  std::vector<ReferenceBlock> blocks;
  blocks.reserve(spec.requests);
  for (size_t k = 0; k < spec.requests; ++k) {
    ReferenceBlock block = pool_block;
    block.range.begin = static_cast<uint32_t>(k * spec.batch);
    block.range.end = static_cast<uint32_t>(
        std::min((k + 1) * spec.batch, stream.size()));
    blocks.push_back(block);
  }

  // Serve lane: each request travels as the raw-set payload bytes a real
  // peer would send, pre-encoded here so the measured path starts at
  // Submit(). The engine tokenizes per request against the snapshot's own
  // dictionary — the production serving shape, not the pooled-block one.
  std::vector<std::string> payloads;
  if (serving) {
    payloads.reserve(spec.requests);
    for (size_t k = 0; k < spec.requests; ++k) {
      const size_t b = k * spec.batch;
      const size_t e = std::min((k + 1) * spec.batch, pool_raw.size());
      const RawSets one(pool_raw.begin() + b, pool_raw.begin() + e);
      std::ostringstream oss;
      WriteRawSets(one, oss);
      payloads.push_back(oss.str());
    }
  }
  out->build_seconds = build_timer.ElapsedSeconds();

  // Dynamic lane, the pre-ingest pass: one uncounted single-threaded full
  // pass over the BASE shards alone — what the stream answered before the
  // delta arrived. Running it after the ingest changes nothing: pool
  // tokens the base never saw hold dictionary ids past every base index's
  // range and probe empty posting lists there (the external-query OOV
  // discipline), so "tokenize after ingest, query base shards only" is
  // byte-identical to a chronologically pre-ingest pass.
  if (dynamic) {
    WallTimer pre_timer;
    for (const ReferenceBlock& block : blocks) {
      out->pairs_pre_ingest += engine->Discover(block, nullptr).size();
    }
    out->pre_ingest_seconds = pre_timer.ElapsedSeconds();
  }

  // Serve phase. Workers own contiguous request slices; slice boundaries
  // depend only on (requests, workers), so the round-0 union is exactly one
  // full pass over the stream at every worker count.
  const size_t workers = static_cast<size_t>(spec.workers);
  const size_t per_worker = (blocks.size() + workers - 1) / workers;
  std::vector<WorkerState> states(workers);
  for (WorkerState& s : states) s.funnel.Reset(funnel_slots);

  WallTimer run_timer;
  if (serving) {
    // Round 0 is barriered: every client serves its slice exactly once and
    // joins before the funnel snapshot, so StatsSnapshot() reads exactly
    // one full pass — no sustained re-issue can leak into the
    // deterministic fields.
    {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (size_t w = 0; w < workers; ++w) {
        const size_t begin = std::min(w * per_worker, blocks.size());
        const size_t end = std::min(begin + per_worker, blocks.size());
        threads.emplace_back([&, w, begin, end] {
          ServeFrameSlice(*served, payloads, begin, end,
                          /*count_results=*/true, &states[w]);
          states[w].rounds = 1;
        });
      }
      for (std::thread& t : threads) t.join();
    }
    out->funnel = served->StatsSnapshot();
    if (spec.mode == RunMode::kSustained) {
      // Sustained rounds re-issue the identical slices uncounted until the
      // deadline (measured from serve start, round 0 included).
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (size_t w = 0; w < workers; ++w) {
        const size_t begin = std::min(w * per_worker, blocks.size());
        const size_t end = std::min(begin + per_worker, blocks.size());
        threads.emplace_back([&, w, begin, end] {
          WorkerState* state = &states[w];
          while (begin < end && state->error.empty() &&
                 run_timer.ElapsedSeconds() < spec.sustained_seconds) {
            ServeFrameSlice(*served, payloads, begin, end,
                            /*count_results=*/false, state);
            state->rounds++;
          }
        });
      }
      for (std::thread& t : threads) t.join();
    }
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (size_t w = 0; w < workers; ++w) {
      const size_t begin = std::min(w * per_worker, blocks.size());
      const size_t end = std::min(begin + per_worker, blocks.size());
      threads.emplace_back([&, w, begin, end] {
        WorkerState* state = &states[w];
        const auto serve = [&](bool count_results) {
          if (topk) {
            ServeTopKSlice(*single, query_pool, blocks, begin, end,
                           spec.top_k, count_results, state);
          } else if (dynamic) {
            ServeDeltaSlice(universe, views, options, blocks, begin, end,
                            count_results, state);
          } else {
            ServeSlice(*engine, blocks, begin, end, count_results, state);
          }
        };
        if (spec.mode == RunMode::kClosedLoop) {
          serve(/*count_results=*/true);
          state->rounds = 1;
          return;
        }
        // Sustained: whole rounds until the deadline, so partial rounds
        // never skew the latency mix toward the slice's cheap prefix.
        WallTimer deadline;
        do {
          serve(/*count_results=*/state->rounds == 0);
          state->rounds++;
        } while (begin < end &&
                 deadline.ElapsedSeconds() < spec.sustained_seconds);
      });
    }
    for (std::thread& t : threads) t.join();
  }
  out->run_seconds = run_timer.ElapsedSeconds();

  if (serving) {
    served->Stop();
    const serve::ServeCounters& c = served->counters();
    out->serve_requests_admitted = c.requests_admitted.load();
    out->serve_requests_shed = c.requests_shed.load();
    out->serve_requests_served = c.requests_served.load();
    out->serve_deadline_exceeded = c.deadline_exceeded.load();
    out->serve_worker_faults = c.worker_faults.load();
    for (const WorkerState& s : states) {
      if (!s.error.empty()) {
        return "workload '" + spec.name + "': serve lane: " + s.error;
      }
    }
  }

  // Merge. Funnel counters are commutative sums (the SearchStats::Merge
  // contract), so the merge order cannot leak into deterministic fields.
  // The serve lane's funnel was snapshotted from the engine above; the
  // direct lanes union their workers' private counters here.
  if (!serving) {
    out->funnel.Reset(funnel_slots);
    for (const WorkerState& s : states) out->funnel.Merge(s.funnel);
  }
  for (const WorkerState& s : states) {
    out->pairs_per_round += s.pairs;
    out->latency.Merge(s.latency);
    out->completed_requests += s.completed;
  }
  out->requests_per_second =
      out->run_seconds > 0.0
          ? static_cast<double>(out->completed_requests) / out->run_seconds
          : 0.0;
  out->peak_rss_bytes = PeakRssBytes();
  return "";
}

}  // namespace silkmoth::bench
