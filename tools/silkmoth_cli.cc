// silkmoth_cli: run RELATED SET SEARCH / DISCOVERY over plain-text files.
//
// Input format (see src/datagen/io.h): one element per line, blank line
// between sets, leading '#' comment lines allowed.
//
//   silkmoth_cli discover --data sets.txt [options]
//   silkmoth_cli search   --data sets.txt --query query.txt [options]
//
// Options:
//   --metric similarity|containment   (default similarity)
//   --phi jaccard|eds|neds            (default jaccard)
//   --delta <0..1]                    (default 0.7)
//   --alpha [0..1)                    (default 0)
//   --q <int>                         (edit similarity; default from alpha)
//   --scheme weighted|unweighted|skyline|dichotomy   (default dichotomy)
//   --threads <n>                     (default 1)
//   --shards <n>                      (default 1; >= 2 uses ShardedEngine)
//   --stats                           (print phase statistics; per-shard
//                                      breakdown when sharded)
//   --generate dblp|schema|columns N  (write a synthetic dataset instead)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/brute_force.h"
#include "core/engine.h"
#include "core/sharded_engine.h"
#include "datagen/dblp.h"
#include "datagen/io.h"
#include "datagen/webtable.h"
#include "util/timer.h"

namespace {

using namespace silkmoth;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s discover --data FILE [options]\n"
               "       %s search --data FILE --query FILE [options]\n"
               "       %s generate dblp|schema|columns N OUT\n"
               "options: --metric similarity|containment --phi "
               "jaccard|eds|neds\n"
               "         --delta D --alpha A --q Q --scheme "
               "weighted|unweighted|skyline|dichotomy\n"
               "         --threads N --shards N --stats --oracle-check\n",
               argv0, argv0, argv0);
  return 2;
}

bool ParseOptions(int argc, char** argv, int start, Options* opt,
                  std::string* data_path, std::string* query_path,
                  bool* stats, bool* oracle_check) {
  for (int i = start; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--data") {
      const char* v = next();
      if (v == nullptr) return false;
      *data_path = v;
    } else if (arg == "--query") {
      const char* v = next();
      if (v == nullptr) return false;
      *query_path = v;
    } else if (arg == "--metric") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "similarity") == 0) {
        opt->metric = Relatedness::kSimilarity;
      } else if (std::strcmp(v, "containment") == 0) {
        opt->metric = Relatedness::kContainment;
      } else {
        return false;
      }
    } else if (arg == "--phi") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "jaccard") == 0) {
        opt->phi = SimilarityKind::kJaccard;
      } else if (std::strcmp(v, "eds") == 0) {
        opt->phi = SimilarityKind::kEds;
      } else if (std::strcmp(v, "neds") == 0) {
        opt->phi = SimilarityKind::kNeds;
      } else {
        return false;
      }
    } else if (arg == "--delta") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->delta = std::atof(v);
    } else if (arg == "--alpha") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->alpha = std::atof(v);
    } else if (arg == "--q") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->q = std::atoi(v);
    } else if (arg == "--scheme") {
      const char* v = next();
      if (v == nullptr) return false;
      if (std::strcmp(v, "weighted") == 0) {
        opt->scheme = SignatureSchemeKind::kWeighted;
      } else if (std::strcmp(v, "unweighted") == 0) {
        opt->scheme = SignatureSchemeKind::kCombUnweighted;
      } else if (std::strcmp(v, "skyline") == 0) {
        opt->scheme = SignatureSchemeKind::kSkyline;
      } else if (std::strcmp(v, "dichotomy") == 0) {
        opt->scheme = SignatureSchemeKind::kDichotomy;
      } else {
        return false;
      }
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->num_threads = std::atoi(v);
    } else if (arg == "--shards") {
      const char* v = next();
      if (v == nullptr) return false;
      opt->num_shards = std::atoi(v);
    } else if (arg == "--stats") {
      *stats = true;
    } else if (arg == "--oracle-check") {
      *oracle_check = true;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

int Generate(int argc, char** argv) {
  if (argc < 5) return Usage(argv[0]);
  const std::string kind = argv[2];
  const size_t n = static_cast<size_t>(std::atoll(argv[3]));
  const std::string out = argv[4];
  RawSets sets;
  if (kind == "dblp") {
    DblpParams p;
    p.num_titles = n;
    sets = GenerateDblpSets(p);
  } else if (kind == "schema") {
    sets = GenerateSchemaSets(SchemaMatchingDefaults(n));
  } else if (kind == "columns") {
    sets = GenerateColumnSets(InclusionDependencyDefaults(n));
  } else {
    return Usage(argv[0]);
  }
  if (!SaveRawSets(sets, out)) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %zu sets to %s\n", sets.size(), out.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string mode = argv[1];
  if (mode == "generate") return Generate(argc, argv);
  if (mode != "discover" && mode != "search") return Usage(argv[0]);

  Options opt;
  std::string data_path, query_path;
  bool print_stats = false, oracle_check = false;
  if (!ParseOptions(argc, argv, 2, &opt, &data_path, &query_path,
                    &print_stats, &oracle_check)) {
    return Usage(argv[0]);
  }
  if (data_path.empty() || (mode == "search" && query_path.empty())) {
    return Usage(argv[0]);
  }
  const std::string err = opt.Validate();
  if (!err.empty()) {
    std::fprintf(stderr, "invalid options: %s\n", err.c_str());
    return 2;
  }

  RawSets raw;
  if (!LoadRawSets(data_path, &raw)) {
    std::fprintf(stderr, "cannot read %s\n", data_path.c_str());
    return 1;
  }
  const TokenizerKind tk = IsEditSimilarity(opt.phi) ? TokenizerKind::kQGram
                                                     : TokenizerKind::kWord;
  Collection data = BuildCollection(raw, tk, opt.EffectiveQ());
  std::printf("# loaded %zu sets (%zu elements) from %s\n", data.NumSets(),
              data.NumElements(), data_path.c_str());

  // --shards >= 2 routes everything through the sharded engine; otherwise
  // the classic single-index engine runs. Only the chosen engine builds its
  // index.
  const bool use_shards = opt.num_shards >= 2;
  std::unique_ptr<SilkMoth> single;
  std::unique_ptr<ShardedEngine> sharded;
  if (use_shards) {
    sharded = std::make_unique<ShardedEngine>(&data, opt);
  } else {
    single = std::make_unique<SilkMoth>(&data, opt);
  }
  const std::string engine_err =
      use_shards ? sharded->error() : single->error();
  if (!engine_err.empty()) {
    std::fprintf(stderr, "invalid options: %s\n", engine_err.c_str());
    return 2;
  }
  if (use_shards) {
    std::printf("# sharded engine: %zu shards\n", sharded->num_shards());
  }

  WallTimer timer;
  SearchStats stats;
  ShardedSearchStats sharded_stats;
  if (mode == "discover") {
    auto pairs = use_shards ? sharded->DiscoverSelf(&sharded_stats)
                            : single->DiscoverSelf(&stats);
    std::printf("# %zu related pairs in %.3fs\n", pairs.size(),
                timer.ElapsedSeconds());
    for (const auto& p : pairs) {
      std::printf("%u\t%u\t%.6f\t%.6f\n", p.ref_id, p.set_id,
                  p.matching_score, p.relatedness);
    }
    if (oracle_check) {
      BruteForce oracle(&data, opt);
      std::printf("# oracle agreement: %s\n",
                  pairs == oracle.DiscoverSelf() ? "yes" : "NO");
    }
  } else {
    RawSets query_raw;
    if (!LoadRawSets(query_path, &query_raw) || query_raw.empty()) {
      std::fprintf(stderr, "cannot read %s\n", query_path.c_str());
      return 1;
    }
    for (size_t qi = 0; qi < query_raw.size(); ++qi) {
      SetRecord ref =
          BuildReference(query_raw[qi], tk, opt.EffectiveQ(), &data);
      auto matches = use_shards ? sharded->Search(ref, &sharded_stats)
                                : single->Search(ref, &stats);
      for (const auto& m : matches) {
        std::printf("%zu\t%u\t%.6f\t%.6f\n", qi, m.set_id, m.matching_score,
                    m.relatedness);
      }
    }
    std::printf("# %zu queries in %.3fs\n", query_raw.size(),
                timer.ElapsedSeconds());
  }
  if (print_stats) {
    std::fputs(use_shards ? sharded_stats.ToString().c_str()
                          : stats.ToString().c_str(),
               stdout);
  }
  return 0;
}
