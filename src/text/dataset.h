#ifndef SILKMOTH_TEXT_DATASET_H_
#define SILKMOTH_TEXT_DATASET_H_

#include <algorithm>
#include <deque>
#include <initializer_list>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "text/token_dictionary.h"

namespace silkmoth {

/// Stable backing store for element text and token arrays.
///
/// Elements are non-owning views (see Element below); this arena owns the
/// bytes they point at in the in-memory build path. Storage is chunked:
/// blocks are reserved up front and never reallocated in place, so a view
/// handed out by Add* stays valid for the arena's whole lifetime no matter
/// how much is appended after it. A snapshot-backed collection uses no
/// arena at all — its views point straight into the loaded region.
class ElementArena {
 public:
  /// Copies `text` into the arena; the returned view is stable.
  std::string_view AddText(std::string_view text);

  /// Copies `tokens` into the arena; the returned view is stable.
  std::span<const TokenId> AddTokens(std::span<const TokenId> tokens);

 private:
  static constexpr size_t kTextBlockBytes = size_t{1} << 16;
  static constexpr size_t kTokenBlockCount = size_t{1} << 14;

  // deque: block objects never move once emplaced, and each block's buffer
  // never reallocates because appends are capped by the reserved capacity.
  std::deque<std::string> text_blocks_;
  std::deque<std::vector<TokenId>> token_blocks_;
};

/// One element of a set (a string in the paper's terminology).
///
/// An element is a *view*: it does not own its bytes. The three members
/// alias either an ElementArena (in-memory build path) or a loaded snapshot
/// region (zero-copy load path) — in both cases the owner must outlive
/// every element pointing at it ("a view never outlives its region", see
/// docs/ARCHITECTURE.md). Copying an element copies the views only, which
/// is what makes snapshot loading free of per-element byte copies.
///
/// The three views of the same text:
///  - `text`:   the raw string; edit similarity computes Levenshtein on it.
///  - `tokens`: sorted, deduplicated token ids. Words for Jaccard, q-grams
///              for edit similarity. These feed the inverted index and the
///              nearest-neighbor search.
///  - `chunks`: q-chunk token ids (edit similarity only), sorted and kept
///              with multiplicity: a chunk string occurring twice appears
///              twice. Signature generation for edit similarity selects
///              chunks (Section 7 of the paper); for Jaccard this is empty.
struct Element {
  std::string_view text;
  std::span<const TokenId> tokens;
  std::span<const TokenId> chunks;

  /// Signature-relevant size: distinct token count for Jaccard, string
  /// length for edit similarity. Chosen by callers via the helpers below.
  size_t TokenCount() const { return tokens.size(); }
  size_t TextLength() const { return text.size(); }

  /// Content equality (the views may point at different storage).
  friend bool operator==(const Element& a, const Element& b) {
    return a.text == b.text &&
           std::equal(a.tokens.begin(), a.tokens.end(), b.tokens.begin(),
                      b.tokens.end()) &&
           std::equal(a.chunks.begin(), a.chunks.end(), b.chunks.begin(),
                      b.chunks.end());
  }
};

/// Materializes an owned element: copies the parts into `arena` and returns
/// an Element viewing them. The building block of the tokenizer and of any
/// test that constructs elements by hand.
Element MakeArenaElement(ElementArena* arena, std::string_view text,
                         std::span<const TokenId> tokens,
                         std::span<const TokenId> chunks = {});

/// A set: an ordered list of elements. Order is preserved from input data
/// (row order) but has no algorithmic meaning.
///
/// `arena` (optional) keeps the elements' backing bytes alive for sets that
/// own their storage: standalone references and test fixtures hold their
/// own arena; the sets of a Collection all share the collection-wide one;
/// snapshot-backed sets carry none (the Snapshot's region owns the bytes).
struct SetRecord {
  std::vector<Element> elements;
  std::shared_ptr<ElementArena> arena;

  size_t Size() const { return elements.size(); }
  bool Empty() const { return elements.empty(); }

  /// Appends an owned element, creating the arena on first use. Convenience
  /// for tests and ad-hoc construction; the tokenizer builds via
  /// MakeArenaElement directly.
  Element& AddElement(std::string_view text,
                      std::initializer_list<TokenId> tokens,
                      std::initializer_list<TokenId> chunks = {});
};

/// A collection of sets sharing one token dictionary.
///
/// The dictionary is shared (shared_ptr) so a reference set tokenized later
/// against the same dictionary sees consistent ids; tokens that only occur in
/// the reference simply have empty inverted lists. The element storage is
/// shared the same way: every SetRecord of an in-memory collection holds the
/// same arena, so copying or slicing the collection never copies bytes.
struct Collection {
  std::vector<SetRecord> sets;
  std::shared_ptr<TokenDictionary> dict;

  size_t NumSets() const { return sets.size(); }

  /// Total number of elements across all sets.
  size_t NumElements() const;

  /// Total number of token occurrences (sum of per-element distinct tokens).
  size_t NumTokenOccurrences() const;
};

}  // namespace silkmoth

#endif  // SILKMOTH_TEXT_DATASET_H_
