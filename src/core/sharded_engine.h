#ifndef SILKMOTH_CORE_SHARDED_ENGINE_H_
#define SILKMOTH_CORE_SHARDED_ENGINE_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/options.h"
#include "core/reference_block.h"
#include "core/search_pass.h"
#include "core/stats.h"
#include "index/inverted_index.h"
#include "text/dataset.h"

namespace silkmoth {

/// The canonical shard partition: splits [0, data.NumSets()) into
/// `num_shards` contiguous, cost-balanced ranges (trailing shards may be
/// empty). ShardedEngine and the snapshot builder both use this, so shard k
/// of a snapshot covers exactly the same set-id range as shard k of an
/// in-process run with the same shard count — the invariant the
/// cross-process merge parity rests on. num_shards must be >= 1.
///
/// Balancing: contiguous-equal-count ranges inherit insertion-order skew
/// (one hot shard on near-duplicate-clustered corpora makes the slowest
/// worker the wall clock), so the partition instead balances a per-set
/// *cost proxy* — Σ over the set's element tokens of the token's global
/// posting count, i.e. the candidate postings a probe of that set touches.
/// When the proxy degenerates to all-zero (token-free corpus) it falls back
/// to element counts, then to one unit per set (the uniform split). Ranges
/// are assigned by deterministic greedy prefix balancing: shard s takes
/// sets until its cost reaches remaining_cost / remaining_shards, taking
/// the boundary set only when that overshoots less than stopping
/// undershoots. Ranges stay contiguous and ascending, so the byte-identity
/// merge protocol is untouched.
std::vector<SetIdRange> ComputeShardRanges(const Collection& data,
                                           uint32_t num_shards);

/// Builds one CSR index per range over `collection`, with up to
/// `num_threads` parallel builders (each builder only reads the immutable
/// collection and writes its own slots). The shared index-construction step
/// of ShardedEngine and the snapshot builder.
std::vector<InvertedIndex> BuildShardIndexes(
    const Collection& collection, const std::vector<SetIdRange>& ranges,
    int num_threads);

/// One shard of a candidate universe as seen by DiscoverAcrossShards:
/// a set-id range plus the index built over it (not owned).
struct ShardView {
  SetIdRange range;                      ///< Global set ids the shard owns.
  const InvertedIndex* index = nullptr;  ///< Index over `range` (borrowed).
};

/// The one discovery driver behind every sharded execution mode — the
/// in-process ShardedEngine and the out-of-process shard runner both call
/// it, so the parity-critical loop (self-pair exclusion, unordered-pair
/// dedup, worker chunking, stats discipline, canonical sort) cannot drift
/// between them.
///
/// Streams every reference of `block` through every shard in `shards`:
/// up to options.num_threads workers each take a contiguous slice of the
/// block with one QueryScratch per (worker, shard). For self-join blocks,
/// block.refs must be `data` itself; self-pairs are excluded and symmetric
/// metrics report each unordered pair once (ref_id < set_id). External
/// blocks evaluate every (query, candidate) pair — no exclusion, no dedup —
/// and additionally stamp the query_sets/oov_tokens counters on every
/// non-empty shard slot. Empty shards are skipped entirely — zero passes,
/// zero stats. `stats`, when non-null, must have per_shard.size() ==
/// shards.size(); slot i aggregates every pass against shards[i]. Returns
/// the canonical (ref_id, set_id)-sorted stream.
std::vector<PairMatch> DiscoverAcrossShards(const ReferenceBlock& block,
                                            const Collection& data,
                                            std::span<const ShardView> shards,
                                            const Options& options,
                                            ShardedSearchStats* stats);

/// Sharded SilkMoth engine: the single-index framework partitioned into
/// `Options::num_shards` contiguous shards.
///
/// SilkMoth's search pass only needs an inverted index over the candidate
/// universe, so the indexed collection splits exactly: shard k owns a
/// contiguous set-id range (cost-balanced by ComputeShardRanges) and
/// carries its own CSR
/// InvertedIndex built over just that range (postings keep global set ids;
/// the token dictionary is the collection's, shared by all shards). A
/// reference is answered by streaming it through every shard's index and
/// concatenating the per-shard matches — ranges are disjoint and ascending,
/// so the concatenation is already sorted by set id and the union is
/// *exactly* the single-index result, scores included (verification only
/// ever looks at the (reference, set) records, never the index).
///
/// Discovery runs as a batch pipeline: each worker thread takes a block of
/// references and pushes every reference through all shards, with one
/// QueryScratch per (worker, shard) so shard passes never share transient
/// state — the layout a future multi-process split inherits directly.
/// Per-shard SearchStats aggregate into ShardedSearchStats.
///
/// Like SilkMoth, the engine holds a pointer to `data`, which must outlive
/// it; everything is immutable after construction, so all query methods are
/// const and thread-safe.
///
/// Usage:
///   Options opt;
///   opt.num_shards = 4;
///   opt.num_threads = 8;
///   ShardedEngine engine(&data, opt);
///   auto pairs = engine.DiscoverSelf();   // == SilkMoth(&data, opt).DiscoverSelf()
class ShardedEngine {
 public:
  /// `data` must outlive the engine. Options are validated eagerly; invalid
  /// options are reported through ok()/error() and queries return empty.
  /// Shard indexes are built in parallel (up to options.num_threads
  /// builders). num_shards may exceed the set count; trailing shards are
  /// then empty and answer every query with no matches.
  ShardedEngine(const Collection* data, Options options);

  /// True when construction validated the options; queries on a not-ok
  /// engine return empty results.
  bool ok() const { return error_.empty(); }
  /// Human-readable validation error ("" when ok()).
  const std::string& error() const { return error_; }
  /// The validated engine configuration.
  const Options& options() const { return options_; }
  /// The indexed collection (owned by the caller).
  const Collection& data() const { return *data_; }

  /// Number of shards actually built: options.num_shards, or 0 when the
  /// engine is not ok() (no shards exist then).
  size_t num_shards() const { return shards_.size(); }

  /// Shard `shard`'s index (postings restricted to shard_range(shard)).
  const InvertedIndex& shard_index(size_t shard) const {
    return shards_[shard].index;
  }

  /// Shard `shard`'s contiguous global set-id range (may be empty).
  SetIdRange shard_range(size_t shard) const { return shards_[shard].range; }

  /// RELATED SET SEARCH (Problem 2) across all shards. Identical result to
  /// SilkMoth::Search on the same data and options.
  std::vector<SearchMatch> Search(const SetRecord& ref,
                                  ShardedSearchStats* stats = nullptr) const;

  /// RELATED SET DISCOVERY (Problem 1) across two collections: every
  /// reference is streamed through every shard. Results sorted by
  /// (ref_id, set_id); identical to SilkMoth::Discover.
  std::vector<PairMatch> Discover(const Collection& refs,
                                  ShardedSearchStats* stats = nullptr) const;

  /// Block-granular discovery: streams exactly the references `block`
  /// selects (a self-join sub-range or an external query collection)
  /// through every shard. The full-collection self-join block reproduces
  /// DiscoverSelf byte for byte. Self-join blocks must view this engine's
  /// own data collection.
  std::vector<PairMatch> Discover(const ReferenceBlock& block,
                                  ShardedSearchStats* stats = nullptr) const;

  /// Discovery within the indexed collection itself (R = S). Self-pairs are
  /// skipped; under SET-SIMILARITY each unordered pair is reported once,
  /// under SET-CONTAINMENT both directions are evaluated. Identical to
  /// SilkMoth::DiscoverSelf.
  std::vector<PairMatch> DiscoverSelf(ShardedSearchStats* stats = nullptr) const;

 private:
  /// One shard: its set-id range and the index over it.
  struct Shard {
    SetIdRange range;
    InvertedIndex index;
  };

  const Collection* data_;
  Options options_;
  std::vector<Shard> shards_;
  std::string error_;
};

}  // namespace silkmoth

#endif  // SILKMOTH_CORE_SHARDED_ENGINE_H_
