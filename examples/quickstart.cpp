// Quickstart: the paper's Table 1/2 scenario in ~60 lines.
//
// Builds a tiny collection of address columns, then runs RELATED SET SEARCH
// under SET-CONTAINMENT with Jaccard element similarity, exactly like
// Example 2 of the paper: with δ = 0.7 the reference "Location" column is
// contained in exactly one candidate.

#include <cstdio>

#include "core/brute_force.h"
#include "core/engine.h"
#include "datagen/builders.h"

int main() {
  using namespace silkmoth;

  // The dataset: four columns of address-like strings (Table 2's S1..S4,
  // spelled with real tokens).
  RawSets raw = {
      {"Mass Ave St Boston 02115", "77 Mass 5th St Boston",
       "77 Mass Ave 5th 02115"},
      {"77 Boston MA", "77 5th St Boston 02115", "77 Mass Ave 02115 Seattle"},
      {"77 Mass Ave 5th Boston MA", "Mass Ave Chicago IL", "77 Mass Ave St"},
      {"77 Mass Ave MA", "5th St 02115 Seattle WA", "77 5th St Boston Seattle"},
  };
  Collection data = BuildCollection(raw, TokenizerKind::kWord);

  // The reference set: the Location column of Table 1/2.
  SetRecord location = BuildReference(
      {"77 Mass Ave Boston MA", "5th St 02115 Seattle WA",
       "77 5th St Chicago IL"},
      TokenizerKind::kWord, /*q=*/0, &data);

  Options options;
  options.metric = Relatedness::kContainment;
  options.phi = SimilarityKind::kJaccard;
  options.delta = 0.7;

  SilkMoth engine(&data, options);
  if (!engine.ok()) {
    std::fprintf(stderr, "bad options: %s\n", engine.error().c_str());
    return 1;
  }

  SearchStats stats;
  auto matches = engine.Search(location, &stats);

  std::printf("SET-CONTAINMENT search, delta=%.2f\n", options.delta);
  std::printf("candidates touched: %zu, verified: %zu\n",
              stats.initial_candidates, stats.verifications);
  for (const auto& m : matches) {
    std::printf("  related set S%u: matching=%.3f containment=%.3f\n",
                m.set_id + 1, m.matching_score, m.relatedness);
  }

  // SilkMoth is exact: the brute-force scan returns the same answer.
  BruteForce oracle(&data, options);
  auto expected = oracle.Search(location);
  std::printf("brute force agrees: %s\n",
              matches == expected ? "yes" : "NO (bug!)");
  return matches == expected ? 0 : 1;
}
