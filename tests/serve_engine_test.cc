// ServeEngine behavior tests, in-process (no transport): response parity
// against the direct DiscoverAcrossShards driver, deadline expiry with
// partial-coverage stamps, deterministic overload shedding, epoch
// hot-swap under in-flight load (the ASan gate for the unmap-after-last-ref
// contract), injected worker faults, and the unservable-frame error path.
//
// The daemon's transports (stdio, unix socket, signals, exit codes) are
// exercised by tests/serve_cli_test.sh against the real binary.

#include "serve/server.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "core/sharded_engine.h"
#include "datagen/builders.h"
#include "datagen/io.h"
#include "snapshot/snapshot.h"
#include "util/fault_injection.h"

namespace silkmoth {
namespace serve {
namespace {

// Small word-token corpus with deliberate overlaps so Jaccard relatedness
// finds pairs at δ = 0.5.
RawSets TestCorpus() {
  return {
      {"alpha beta", "gamma delta"},
      {"alpha beta", "gamma epsilon"},
      {"zeta eta", "theta iota"},
      {"zeta eta", "theta kappa"},
      {"alpha beta", "theta iota"},
      {"lambda mu", "nu xi"},
      {"lambda mu", "nu omicron"},
      {"gamma delta", "nu xi"},
  };
}

Options TestOptions() {
  Options o;
  o.metric = Relatedness::kSimilarity;
  o.phi = SimilarityKind::kJaccard;
  o.delta = 0.5;
  o.alpha = 0.5;
  o.num_threads = 1;
  return o;
}

std::string Payload(const RawSets& sets) {
  std::ostringstream oss;
  WriteRawSets(sets, oss);
  return oss.str();
}

Frame QueryFrame(uint64_t id, const RawSets& sets) {
  Frame f;
  f.type = FrameType::kQuery;
  f.request_id = id;
  f.body = Payload(sets);
  return f;
}

// Submits and blocks for the response — the closed-loop client shape.
Frame SubmitAndWait(ServeEngine& engine, Frame frame) {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Frame response;
  engine.Submit(std::move(frame), [&](Frame f) {
    std::lock_guard<std::mutex> lock(mu);
    response = std::move(f);
    done = true;
    cv.notify_one();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return done; });
  return response;
}

// The expected kResult body: the same payload run through the direct
// DiscoverAcrossShards driver over an identical snapshot, formatted the way
// `query --snapshot` prints pair lines.
std::string ExpectedBody(const Collection& corpus, const RawSets& query_raw,
                         const Options& options, uint32_t num_shards) {
  Snapshot snap =
      BuildSnapshot(corpus, TokenizerKind::kWord, 0, num_shards);
  std::vector<ShardView> views;
  for (const Snapshot::Shard& sh : snap.shards) {
    views.push_back(ShardView{sh.range, &sh.index});
  }
  Collection query;
  const ReferenceBlock block =
      BuildQueryBlock(query_raw, TokenizerKind::kWord, 0, snap.data, &query);
  ShardedSearchStats stats;
  stats.Reset(views.size());
  const std::vector<PairMatch> pairs =
      DiscoverAcrossShards(block, snap.data, views, options, &stats);
  std::string body;
  for (const PairMatch& p : pairs) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%u\t%u\t%.6f\t%.6f\n", p.ref_id,
                  p.set_id, p.matching_score, p.relatedness);
    body += buf;
  }
  return body;
}

TEST(ServeEngineTest, ResultBodyMatchesDirectDriver) {
  const RawSets raw = TestCorpus();
  const Collection corpus = BuildCollection(raw, TokenizerKind::kWord, 0);
  ServeOptions so;
  so.query = TestOptions();
  so.workers = 2;
  ServeEngine engine(so);
  ASSERT_EQ(engine.StartWith(
                BuildSnapshot(corpus, TokenizerKind::kWord, 0, 2)),
            "");

  const RawSets query_raw = {raw[0], raw[3]};
  Frame resp = SubmitAndWait(engine, QueryFrame(5, query_raw));
  ASSERT_EQ(resp.type, FrameType::kResult) << resp.body;
  EXPECT_EQ(resp.request_id, 5u);
  EXPECT_FALSE(resp.body.empty());
  EXPECT_EQ(resp.body, ExpectedBody(corpus, query_raw, so.query, 2));

  // Identical payloads answer byte-identically, however often served.
  const Frame again = SubmitAndWait(engine, QueryFrame(6, query_raw));
  EXPECT_EQ(again.body, resp.body);
  engine.Stop();
  EXPECT_EQ(engine.counters().requests_served.load(), 2u);
}

TEST(ServeEngineTest, PingAnswersInlineWithStatus) {
  const Collection corpus =
      BuildCollection(TestCorpus(), TokenizerKind::kWord, 0);
  ServeOptions so;
  so.query = TestOptions();
  ServeEngine engine(so);
  ASSERT_EQ(engine.StartWith(
                BuildSnapshot(corpus, TokenizerKind::kWord, 0, 1)),
            "");
  Frame ping;
  ping.type = FrameType::kPing;
  ping.request_id = 9;
  const Frame pong = SubmitAndWait(engine, std::move(ping));
  EXPECT_EQ(pong.type, FrameType::kPong);
  EXPECT_EQ(pong.request_id, 9u);
  EXPECT_NE(pong.body.find("\"generation\":1"), std::string::npos)
      << pong.body;
  engine.Stop();
}

TEST(ServeEngineTest, UnservableFrameTypeAnswersTypedError) {
  const Collection corpus =
      BuildCollection(TestCorpus(), TokenizerKind::kWord, 0);
  ServeOptions so;
  so.query = TestOptions();
  ServeEngine engine(so);
  ASSERT_EQ(engine.StartWith(
                BuildSnapshot(corpus, TokenizerKind::kWord, 0, 1)),
            "");
  Frame bogus;
  bogus.type = FrameType::kResult;  // A response type is not servable.
  bogus.request_id = 3;
  const Frame resp = SubmitAndWait(engine, std::move(bogus));
  EXPECT_EQ(resp.type, FrameType::kError);
  EXPECT_NE(resp.body.find("bad-type"), std::string::npos) << resp.body;
  EXPECT_EQ(engine.counters().malformed_frames.load(), 1u);
  engine.Stop();
}

TEST(ServeEngineTest, DeadlineExpiryStampsPartialCoverage) {
  const Collection corpus =
      BuildCollection(TestCorpus(), TokenizerKind::kWord, 0);
  ServeOptions so;
  so.query = TestOptions();
  so.workers = 1;
  so.request_deadline_seconds = 0.05;
  ServeEngine engine(so);
  ASSERT_EQ(engine.StartWith(
                BuildSnapshot(corpus, TokenizerKind::kWord, 0, 2)),
            "");
  // Pace the request: the fault sleeps 300ms after shard 0, so the 50ms
  // deadline deterministically expires before shard 1 runs.
  fault::ArmForTest("serve-shard:sleep:300");
  const Frame resp =
      SubmitAndWait(engine, QueryFrame(11, {TestCorpus()[0]}));
  fault::ArmForTest("");
  ASSERT_EQ(resp.type, FrameType::kDeadlineExceeded) << resp.body;
  EXPECT_EQ(resp.request_id, 11u);
  EXPECT_NE(resp.body.find("# partial coverage: 1 of 2 shards"),
            std::string::npos)
      << resp.body;
  EXPECT_NE(resp.body.find("# covered shards: 0"), std::string::npos);
  EXPECT_NE(resp.body.find("# missing shards: 1"), std::string::npos);
  EXPECT_EQ(engine.counters().deadline_exceeded.load(), 1u);
  engine.Stop();
}

TEST(ServeEngineTest, ShedsDeterministicallyOnByteBudget) {
  const Collection corpus =
      BuildCollection(TestCorpus(), TokenizerKind::kWord, 0);
  const Frame q1 = QueryFrame(1, {TestCorpus()[0]});
  ServeOptions so;
  so.query = TestOptions();
  so.workers = 1;
  // Budget = exactly one in-flight payload: the charge is held from
  // admission to response, so the second submit must shed regardless of
  // how the worker is scheduled.
  so.max_inflight_bytes = q1.body.size();
  ServeEngine engine(so);
  ASSERT_EQ(engine.StartWith(
                BuildSnapshot(corpus, TokenizerKind::kWord, 0, 1)),
            "");
  // Hold the first request on the worker so it cannot release its charge.
  fault::ArmForTest("worker-dequeue:sleep:300");

  std::mutex mu;
  std::condition_variable cv;
  std::vector<Frame> responses;
  const auto collect = [&](Frame f) {
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(std::move(f));
    cv.notify_one();
  };
  engine.Submit(q1, collect);
  const Frame shed = SubmitAndWait(engine, QueryFrame(2, {TestCorpus()[0]}));
  EXPECT_EQ(shed.type, FrameType::kOverloaded);
  EXPECT_EQ(shed.request_id, 2u);
  EXPECT_NE(shed.body.find("overloaded"), std::string::npos) << shed.body;
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return responses.size() == 1; });
  }
  fault::ArmForTest("");
  EXPECT_EQ(responses[0].type, FrameType::kResult);
  EXPECT_EQ(engine.counters().requests_shed.load(), 1u);
  EXPECT_EQ(engine.counters().requests_admitted.load(), 1u);
  engine.Stop();
}

TEST(ServeEngineTest, WorkerFaultAnswersOneRequestThenRecovers) {
  const Collection corpus =
      BuildCollection(TestCorpus(), TokenizerKind::kWord, 0);
  ServeOptions so;
  so.query = TestOptions();
  so.workers = 1;
  ServeEngine engine(so);
  ASSERT_EQ(engine.StartWith(
                BuildSnapshot(corpus, TokenizerKind::kWord, 0, 1)),
            "");
  fault::ArmForTest("worker-dequeue:fail");
  const Frame faulted = SubmitAndWait(engine, QueryFrame(1, {TestCorpus()[0]}));
  fault::ArmForTest("");
  EXPECT_EQ(faulted.type, FrameType::kError);
  EXPECT_NE(faulted.body.find("internal"), std::string::npos) << faulted.body;
  EXPECT_EQ(engine.counters().worker_faults.load(), 1u);
  // The daemon survives the fault: the next request serves normally.
  const Frame ok = SubmitAndWait(engine, QueryFrame(2, {TestCorpus()[0]}));
  EXPECT_EQ(ok.type, FrameType::kResult);
  engine.Stop();
}

TEST(ServeEngineTest, HotSwapBumpsGenerationUnderInflightLoad) {
  const RawSets raw = TestCorpus();
  const Collection corpus = BuildCollection(raw, TokenizerKind::kWord, 0);
  Snapshot disk = BuildSnapshot(corpus, TokenizerKind::kWord, 0, 2);
  const std::string path = testing::TempDir() + "/serve_swap_snapshot.bin";
  ASSERT_EQ(SaveSnapshot(disk, path), "");

  ServeOptions so;
  so.query = TestOptions();
  so.workers = 1;
  so.snapshot_path = path;  // What SIGHUP/Swap() reloads.
  ServeEngine engine(so);
  ASSERT_EQ(engine.StartWith(std::move(disk)), "");
  EXPECT_EQ(engine.generation_id(), 1u);

  // Hold a request in flight across the swap: it keeps its epoch reference
  // to generation 1, so the old mapping must stay alive until its response
  // lands (ASan enforces the no-use-after-unmap half of the contract).
  fault::ArmForTest("worker-dequeue:sleep:200");
  std::mutex mu;
  std::condition_variable cv;
  std::vector<Frame> responses;
  engine.Submit(QueryFrame(1, {raw[0]}), [&](Frame f) {
    std::lock_guard<std::mutex> lock(mu);
    responses.push_back(std::move(f));
    cv.notify_one();
  });
  ASSERT_EQ(engine.Swap(), "");
  EXPECT_EQ(engine.generation_id(), 2u);
  EXPECT_EQ(engine.counters().swap_generations.load(), 1u);
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return responses.size() == 1; });
  }
  fault::ArmForTest("");
  ASSERT_EQ(responses[0].type, FrameType::kResult);

  // Same corpus on both generations: responses stay byte-identical, and
  // the new generation serves.
  const Frame after = SubmitAndWait(engine, QueryFrame(2, {raw[0]}));
  EXPECT_EQ(after.type, FrameType::kResult);
  EXPECT_EQ(after.body, responses[0].body);

  // Swap failure paths leave the serving generation untouched.
  fault::ArmForTest("swap-open:fail");
  EXPECT_NE(engine.Swap(), "");
  fault::ArmForTest("");
  EXPECT_EQ(engine.generation_id(), 2u);
  engine.Stop();
  std::remove(path.c_str());
}

TEST(ServeEngineTest, SwapWithoutPathFailsCleanly) {
  const Collection corpus =
      BuildCollection(TestCorpus(), TokenizerKind::kWord, 0);
  ServeOptions so;
  so.query = TestOptions();
  ServeEngine engine(so);
  ASSERT_EQ(engine.StartWith(
                BuildSnapshot(corpus, TokenizerKind::kWord, 0, 1)),
            "");
  EXPECT_NE(engine.Swap(), "");
  EXPECT_EQ(engine.generation_id(), 1u);
  engine.Stop();
}

}  // namespace
}  // namespace serve
}  // namespace silkmoth
