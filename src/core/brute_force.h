#ifndef SILKMOTH_CORE_BRUTE_FORCE_H_
#define SILKMOTH_CORE_BRUTE_FORCE_H_

#include <vector>

#include "core/engine.h"
#include "core/options.h"
#include "text/dataset.h"

namespace silkmoth {

/// Brute-force related-set search/discovery: evaluates the maximum matching
/// against every set with no signatures or filters. This is the paper's
/// naive O(n^3 m^2) baseline (NOOPT in Figure 4) and the correctness oracle
/// for every integration test — SilkMoth must return exactly these results.
///
/// The `reduction` flag of `options` is honored (it is a pure verification
/// optimization); all other pruning options are ignored.
class BruteForce {
 public:
  /// `data` must outlive the oracle.
  BruteForce(const Collection* data, Options options);

  bool ok() const { return error_.empty(); }
  const std::string& error() const { return error_; }

  std::vector<SearchMatch> Search(const SetRecord& ref) const;
  std::vector<PairMatch> Discover(const Collection& refs) const;
  std::vector<PairMatch> DiscoverSelf() const;

 private:
  std::vector<PairMatch> DiscoverImpl(const Collection& refs,
                                      bool self_join) const;

  const Collection* data_;
  Options options_;
  std::string error_;
};

}  // namespace silkmoth

#endif  // SILKMOTH_CORE_BRUTE_FORCE_H_
