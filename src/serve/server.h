#ifndef SILKMOTH_SERVE_SERVER_H_
#define SILKMOTH_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/options.h"
#include "core/sharded_engine.h"
#include "core/stats.h"
#include "serve/admission.h"
#include "serve/protocol.h"
#include "snapshot/delta_shard.h"
#include "snapshot/snapshot.h"

namespace silkmoth {
namespace serve {

/// The resident serve daemon (docs/ARCHITECTURE.md, "Serving data path"):
/// a long-lived process mmaps a snapshot once and serves query-vs-corpus
/// discovery over the frame protocol. Transport injector threads parse and
/// validate frames and Submit() them; ServeEngine worker threads drain
/// per-worker admission lanes and run each request through the one
/// DiscoverAcrossShards driver, so a served response body is byte-identical
/// to `query --snapshot` output for the same payload (the serve parity
/// contract, pinned in CI).
///
/// Snapshot hot-swap is epoch-ref-counted: the live mapping lives inside a
/// shared_ptr'd Generation; every request grabs one reference for its whole
/// execution, Swap() flips the pointer, and the old mapping unmaps when the
/// last in-flight request drops its reference — a view never outlives its
/// region, with no drain barrier stalling the serving path.
///
/// Dynamic corpora ride the same mechanism: a kIngest frame appends its
/// raw sets to the generation's in-memory DeltaShard (copy-on-ingest, so
/// in-flight requests keep querying their epoch's delta untouched) and
/// flips in a new generation sharing the same base mapping. Queries then
/// discover over base shards + the delta view transparently. A SIGHUP
/// Swap() to a compacted snapshot drains the delta: the new generation
/// starts with none, and requests already running finish on theirs.

/// Daemon configuration (the `serve` subcommand's flags, docs/CLI.md).
struct ServeOptions {
  std::string snapshot_path;  ///< Snapshot to load (and reload on SIGHUP).
  Options query;              ///< Output-affecting query options.
  SnapshotLoadMode load_mode = SnapshotLoadMode::kMmap;  ///< --copy-load.
  int workers = 2;            ///< Worker threads (one pinned lane each).
  size_t max_queue = 64;      ///< --max-queue: queued-request bound.
  size_t max_inflight_bytes = 64u << 20;  ///< --max-inflight: payload-byte
                                          ///< bound across admitted work.
  size_t max_frame_bytes = kDefaultMaxFrameBytes;  ///< --max-frame.
  double request_deadline_seconds = 0.0;  ///< --request-deadline; 0 = off.
};

/// The serving core, transport-agnostic (tests and the bench serve lane
/// drive it in-process; the stdio/socket transports below drive it from
/// fds). Start one of Start()/StartWith(), Submit() frames, Stop() to drain.
class ServeEngine {
 public:
  /// Response sink: invoked exactly once per submitted frame, possibly from
  /// a worker thread. Must be thread-safe.
  using RespondFn = std::function<void(Frame)>;

  explicit ServeEngine(ServeOptions options);
  ~ServeEngine();

  /// Loads options().snapshot_path as generation 1 and starts the worker
  /// threads. Returns "" on success, else the load/compatibility error.
  std::string Start();

  /// Starts from an in-memory snapshot instead of a file (unit tests and
  /// the bench serve lane; SIGHUP swap then needs a snapshot_path).
  std::string StartWith(Snapshot snap);

  /// Stops admission, drains queued requests (every admitted request still
  /// gets its response), and joins the workers. Idempotent.
  void Stop();

  /// Routes one validated frame: kPing is answered inline, kQuery goes
  /// through admission (an OVERLOADED response when shed), kIngest is
  /// applied inline under the tokenize mutex (a kIngested receipt on
  /// success, a typed error on failure), anything else is answered with a
  /// typed error frame. `respond` is always called exactly once,
  /// synchronously for everything but admitted queries.
  void Submit(Frame frame, RespondFn respond);

  /// Hot-swaps to a freshly loaded generation of options().snapshot_path
  /// (the SIGHUP path). The new snapshot must pass CheckSnapshotCompatible
  /// against the serve options; on any error the old generation keeps
  /// serving untouched. The new generation starts with an empty delta —
  /// swapping to a compacted snapshot is how ingested sets drain out of
  /// memory (the `compactions` counter bumps when the incoming snapshot's
  /// generation counter exceeds the replaced base's). Returns "" on
  /// success.
  std::string Swap();

  /// Id of the serving generation (1-based; bumps per successful Swap()).
  uint64_t generation_id() const;

  /// Live serve counters (atomics; readable from any thread).
  ServeCounters& counters() { return counters_; }

  /// One-line JSON status — generation, workers, queue depth, counters —
  /// the kPong response body.
  std::string StatusJson() const;

  /// Funnel counters accumulated across every request served so far,
  /// slot-aligned to the current generation's shards (the bench serve lane
  /// snapshots this after its counted round).
  ShardedSearchStats StatsSnapshot() const;

  /// The configuration the engine was built with.
  const ServeOptions& options() const { return options_; }

 private:
  /// One serving epoch: the base mapping, the (possibly null) in-memory
  /// delta over it, and the shard views — base shards first, the delta
  /// view last. Requests hold a shared_ptr for their whole execution — the
  /// epoch reference that keeps mapping and delta alive across a Swap()
  /// or an ingest. The base Snapshot sits behind its own shared_ptr so an
  /// ingest can flip in a new Generation without remapping or copying the
  /// base (the delta's set views alias it).
  struct Generation {
    uint64_t id = 0;
    std::shared_ptr<const Snapshot> snap;
    std::shared_ptr<const DeltaShard> delta;  // Null until the first ingest.
    std::vector<ShardView> views;
  };

  std::shared_ptr<Generation> MakeGeneration(
      std::shared_ptr<const Snapshot> snap,
      std::shared_ptr<const DeltaShard> delta);
  std::shared_ptr<const Generation> Publish(std::shared_ptr<Generation> gen);
  std::shared_ptr<const Generation> Current() const;
  void WorkerLoop(size_t worker);
  Frame Execute(const ServeRequest& req);
  Frame HandleIngest(const Frame& frame);

  ServeOptions options_;
  ServeCounters counters_;
  std::unique_ptr<AdmissionQueues> queues_;
  std::vector<std::thread> workers_;
  bool started_ = false;
  bool stopped_ = false;

  mutable std::mutex gen_mu_;   // Guards current_ and next_generation_id_.
  std::shared_ptr<const Generation> current_;
  uint64_t next_generation_id_ = 1;

  // BuildQueryBlock interns OOV tokens into the generation's shared
  // dictionary (the documented single-writer rule), so request tokenization
  // serializes here; the discovery hot path never reads the dictionary, so
  // it runs fully parallel.
  std::mutex tokenize_mu_;

  mutable std::mutex stats_mu_;  // Guards stats_.
  ShardedSearchStats stats_;
};

/// True when SIGTERM/SIGINT asked the daemon to exit (set by the handlers
/// InstallServeSignalHandlers installs).
bool ServeTermRequested();

/// Consumes a pending SIGHUP (true at most once per signal) — the
/// transports poll this and call ServeEngine::Swap().
bool ConsumeServeHup();

/// Installs the daemon's signal handlers: SIGHUP requests a snapshot
/// hot-swap, SIGTERM/SIGINT request a graceful exit. Handlers only set
/// flags; the transport loops act on them between reads.
void InstallServeSignalHandlers();

/// Serves one peer over stdin/stdout: length-prefixed frames in on fd 0,
/// response frames out on fd 1, every diagnostic on stderr. Returns the
/// CLI exit code: 0 after a clean EOF or shutdown frame, 3 after a framing
/// violation (one typed error frame is sent first; a single-peer stream
/// with broken framing cannot be re-synchronized), 1 on transport I/O
/// failure. The engine must be started; it is drained and stopped before
/// returning.
int RunStdioServer(ServeEngine& engine);

/// Listens on a unix-domain socket at `socket_path` and serves every
/// connection with one injector thread each. A framing violation answers
/// with a typed error frame and closes *that* connection — the daemon keeps
/// serving (the never-crash contract). A stale socket file (e.g. after
/// kill -9) is silently replaced, so restart needs no recovery step.
/// Returns the CLI exit code (0 on SIGTERM/shutdown-frame exit, 1 when the
/// socket cannot be set up).
int RunSocketServer(ServeEngine& engine, const std::string& socket_path);

}  // namespace serve
}  // namespace silkmoth

#endif  // SILKMOTH_SERVE_SERVER_H_
