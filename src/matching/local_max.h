#ifndef SILKMOTH_MATCHING_LOCAL_MAX_H_
#define SILKMOTH_MATCHING_LOCAL_MAX_H_

#include "matching/hungarian.h"

namespace silkmoth {

/// Weight of the local-max matching of a non-negative weight matrix
/// (Birn et al., arXiv:1302.4587).
///
/// Each round selects every edge (i, j) that is simultaneously row-maximal
/// (j is row i's heaviest live column) and column-maximal (i is column j's
/// heaviest live row), with ties broken toward the smallest index on both
/// sides, then retires the matched rows and columns. Rounds repeat until no
/// positive edge remains. The tie-break makes the lexicographically first
/// maximum-weight live edge mutually maximal, so every round with a positive
/// edge matches at least one pair — termination and determinism follow.
///
/// The result is the weight of a feasible matching, hence a lower bound on
/// MaxWeightMatchingScore, and it carries the local-max guarantee: it is at
/// least half the maximum-weight matching. Neither it nor the row-greedy
/// bound dominates the other, so callers wanting the tightest cheap lower
/// bound should take the max of both.
double LocalMaxMatchingScore(const WeightMatrix& weights);

}  // namespace silkmoth

#endif  // SILKMOTH_MATCHING_LOCAL_MAX_H_
